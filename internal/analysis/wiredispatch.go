package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// wiredispatch cross-checks the wire protocol's three registries, which
// ordinary compilation cannot connect:
//
//  1. every payload type (a type implementing wire.Payload) must be
//     registered with the codec (a register(KindX, factory) call), or
//     NewPayload returns nil and the message fails to decode at the
//     receiver;
//  2. every kind constant must have a registration and a kindNames
//     entry, so decode and diagnostics cover the whole enum;
//  3. every payload type must be consumed somewhere outside the wire
//     package — a `case *wire.T:` in a manager's dispatch switch or a
//     `reply.Payload.(*wire.T)` assertion at a requester — otherwise the
//     message is sent (or replied) into the void.
//
// The wire package is located structurally: a package named "wire"
// declaring a Kind type, a Payload interface, and a register function.
// That keeps the analyzer honest on fixture modules too.
type wiredispatch struct{}

func newWiredispatch() *wiredispatch { return &wiredispatch{} }

func (a *wiredispatch) Name() string { return "wiredispatch" }

func (a *wiredispatch) Run(prog *Program) []Finding {
	wirePkg := findWirePkg(prog)
	if wirePkg == nil {
		return nil
	}
	var out []Finding

	payloads := payloadTypes(wirePkg)
	regs, regPos := registrations(wirePkg)
	names := kindNameEntries(wirePkg)
	kinds := kindConstants(wirePkg)
	consumed := consumedTypes(prog, wirePkg)

	registeredTypes := make(map[string]bool)
	for _, t := range regs {
		registeredTypes[t] = true
	}

	// 1. Payload types without a codec registration.
	for _, p := range payloads {
		if !registeredTypes[p.name] {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(p.pos),
				Analyzer: "wiredispatch",
				Message: fmt.Sprintf("payload type %s implements Payload but has no "+
					"register(Kind..., ...) call: messages of this type cannot be decoded", p.name),
			})
		}
	}
	// 2. Kind constants without registration or name.
	for _, k := range kinds {
		if _, ok := regs[k.name]; !ok {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(k.pos),
				Analyzer: "wiredispatch",
				Message: fmt.Sprintf("wire kind %s is never registered: NewPayload(%s) "+
					"returns nil and decoding fails", k.name, k.name),
			})
		}
		if !names[k.name] {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(k.pos),
				Analyzer: "wiredispatch",
				Message:  fmt.Sprintf("wire kind %s has no kindNames entry", k.name),
			})
		}
	}
	// 3. Payload types nobody consumes.
	for _, p := range payloads {
		if !registeredTypes[p.name] {
			continue // already reported above
		}
		if !consumed[p.name] {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(regPos[p.name]),
				Analyzer: "wiredispatch",
				Message: fmt.Sprintf("payload type %s has no consumer outside the wire "+
					"package: no dispatch case *wire.%s and no .(*wire.%s) assertion",
					p.name, p.name, p.name),
			})
		}
	}
	return out
}

// findWirePkg locates the protocol package.
func findWirePkg(prog *Program) *Package {
	for _, pkg := range prog.Pkgs {
		if pkg.Pkg.Name() != "wire" {
			continue
		}
		scope := pkg.Pkg.Scope()
		if scope.Lookup("Kind") != nil && scope.Lookup("Payload") != nil &&
			scope.Lookup("register") != nil {
			return pkg
		}
	}
	return nil
}

// wireSym is one named symbol of the wire package.
type wireSym struct {
	name string
	pos  token.Pos
}

// payloadTypes lists the named types in the wire package whose pointer
// implements the Payload interface.
func payloadTypes(pkg *Package) []wireSym {
	iface, _ := pkg.Pkg.Scope().Lookup("Payload").Type().Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []wireSym
	for _, name := range pkg.Pkg.Scope().Names() {
		tn, ok := pkg.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		if types.Implements(types.NewPointer(named), iface) {
			out = append(out, wireSym{name, tn.Pos()})
		}
	}
	return out
}

// registrations parses register(KindX, func() Payload { return &T{} })
// calls, returning kind-name → type-name and type-name → call position.
func registrations(pkg *Package) (map[string]string, map[string]token.Pos) {
	regs := make(map[string]string)
	pos := make(map[string]token.Pos)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "register" {
				return true
			}
			kind := types.ExprString(call.Args[0])
			typeName := factoryTypeName(call.Args[1])
			if typeName != "" {
				regs[kind] = typeName
				pos[typeName] = call.Pos()
			} else {
				regs[kind] = "?"
			}
			return true
		})
	}
	return regs, pos
}

// factoryTypeName digs the composite-literal type out of a payload
// factory like `func() Payload { return &SignOnRequest{} }` or
// `func() Payload { return new(SignOnRequest) }`.
func factoryTypeName(e ast.Expr) string {
	name := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if id, ok := n.Type.(*ast.Ident); ok {
				name = id.Name
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
				if t, ok := n.Args[0].(*ast.Ident); ok {
					name = t.Name
				}
			}
		}
		return true
	})
	return name
}

// kindNameEntries collects the keys of the kindNames map literal.
func kindNameEntries(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "kindNames" || i >= len(vs.Values) {
					continue
				}
				if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							out[types.ExprString(kv.Key)] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// kindConstants lists the exported constants of type Kind, minus
// KindInvalid (the zero sentinel is deliberately unregistered).
func kindConstants(pkg *Package) []wireSym {
	kindType := pkg.Pkg.Scope().Lookup("Kind").Type()
	var out []wireSym
	for _, name := range pkg.Pkg.Scope().Names() {
		c, ok := pkg.Pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Name() == "KindInvalid" {
			continue
		}
		if types.Identical(c.Type(), kindType) {
			out = append(out, wireSym{c.Name(), c.Pos()})
		}
	}
	return out
}

// consumedTypes walks every package except wire itself and records which
// wire types appear in a type-switch case or type assertion.
func consumedTypes(prog *Program, wirePkg *Package) map[string]bool {
	out := make(map[string]bool)
	record := func(pkg *Package, typeExpr ast.Expr) {
		if typeExpr == nil {
			return // x.(type) in a switch header
		}
		t := pkg.Info.TypeOf(typeExpr)
		if t == nil {
			return
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		if obj := named.Obj(); obj.Pkg() == wirePkg.Pkg {
			out[obj.Name()] = true
		}
	}
	for _, pkg := range prog.Pkgs {
		if pkg == wirePkg {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeAssertExpr:
					record(pkg, n.Type)
				case *ast.TypeSwitchStmt:
					for _, c := range n.Body.List {
						if cc, ok := c.(*ast.CaseClause); ok {
							for _, t := range cc.List {
								record(pkg, t)
							}
						}
					}
				}
				return true
			})
		}
	}
	return out
}
