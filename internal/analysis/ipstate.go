package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ipstate.go is the interprocedural layer shared by lockorder, lockhold
// and guardedby. One pass over every production package (driven by the
// same lockScanner the intraprocedural analyzers use) produces a
// summary per function — blocking operations, canonical mutex
// acquisitions and outgoing call sites, each with the lock state in
// force — and three fixpoints propagate those facts along the call
// graph built by callgraph.go:
//
//   - mayBlock: the function can transitively reach a blocking
//     operation (channel op, blocking select, blocking API call)
//     without an intervening goroutine launch. A witness chain is kept
//     for reporting.
//   - mustEntry: canonical locks held on *every* static call path
//     reaching the function (intersection over call sites). Exported
//     functions and functions used as values are forced to the empty
//     set: callers outside the analyzed source (tests, reflection,
//     stored handlers) are invisible, so nothing may be assumed.
//   - mayEntry: canonical locks held on *some* call path (union), with
//     one witness predecessor per lock for chain reconstruction. This
//     feeds the lock-order graph.
type funcSum struct {
	obj      *types.Func   // nil for function literals
	lit      *ast.FuncLit  // nil for declared functions
	decl     *ast.FuncDecl // nil for function literals
	pkg      *Package
	pos      token.Pos
	name     string
	exported bool

	blocks   []blockOp
	acquires []acqOp
	calls    []callOp

	mayBlock  *blockChain
	mustEntry map[string]bool
	mayEntry  map[string]entrySrc
}

// blockOp is one directly blocking operation in a function body.
type blockOp struct {
	what string
	pos  token.Pos
}

// acqOp is one canonical mutex acquisition, with the canonical locks
// already held locally when it executes.
type acqOp struct {
	canon  string
	reader bool
	pos    token.Pos
	held   map[string]token.Pos
}

// callOp is one outgoing call site. Exactly one of staticFn / ifaceFn /
// lit is set for resolvable calls; dynamic marks calls through function
// values, which the engine records but cannot resolve.
type callOp struct {
	staticFn    *types.Func
	ifaceFn     *types.Func
	lit         *ast.FuncLit
	dynamic     bool
	isGo        bool // `go f(...)`: f runs outside the caller's lock state
	blockingAPI bool // already classified by blockingCall (lockhold reports it directly)
	pos         token.Pos
	held        heldSet              // printed-key lock state at the call
	canonHeld   map[string]token.Pos // canonical projection of held
	callees     []*funcSum           // filled by engine.link
}

// blockChain is a mayBlock witness: the ultimate blocking operation and
// the callee names leading to it (the generic witness shape from
// dataflow.go).
type blockChain = dfChain

// entrySrc is one witness predecessor for a lock in mayEntry.
type entrySrc struct {
	caller  *funcSum
	callPos token.Pos
	local   bool // the caller held the lock locally at the call site
	lockPos token.Pos
}

type engine struct {
	prog     *Program
	sums     []*funcSum
	byObj    map[*types.Func]*funcSum
	byLit    map[*ast.FuncLit]*funcSum
	valueRef map[*types.Func]bool // function referenced as a value somewhere
}

// engine builds the interprocedural engine once per Program and caches
// it, so lockorder, lockhold and guardedby share one computation.
func (p *Program) engine() *engine {
	if p.eng == nil {
		p.eng = buildEngine(p)
	}
	return p.eng
}

func buildEngine(prog *Program) *engine {
	e := &engine{
		prog:     prog,
		byObj:    make(map[*types.Func]*funcSum),
		byLit:    make(map[*ast.FuncLit]*funcSum),
		valueRef: make(map[*types.Func]bool),
	}
	for _, pkg := range prog.Pkgs {
		v := &ipVisitor{eng: e, pkg: pkg, litMode: make(map[*ast.FuncLit]litLaunch)}
		s := &lockScanner{info: pkg.Info, v: v}
		s.scanPackage(pkg)
	}
	e.link()
	e.computeMayBlock()
	e.computeMustEntry()
	e.computeMayEntry()
	return e
}

// litLaunch records how a function literal leaves its creating
// statement; enterFunc consumes it when the scanner descends into the
// literal (always after the creating statement was visited).
type litLaunch int

const (
	litPublished litLaunch = iota // stored or passed: analyzed as a root
	litSync                       // invoked on the spot (call, Once.Do)
	litGo                         // goroutine body
)

// ipVisitor populates funcSums while the lockScanner walks a package.
type ipVisitor struct {
	eng     *engine
	pkg     *Package
	stack   []*funcSum
	litMode map[*ast.FuncLit]litLaunch
}

func (v *ipVisitor) current() *funcSum {
	if len(v.stack) == 0 {
		return nil
	}
	return v.stack[len(v.stack)-1]
}

func (v *ipVisitor) enterFunc(node ast.Node) {
	var sum *funcSum
	switch n := node.(type) {
	case *ast.FuncDecl:
		fn, _ := v.pkg.Info.Defs[n.Name].(*types.Func)
		sum = &funcSum{obj: fn, decl: n, pkg: v.pkg, pos: n.Pos(), name: displayName(fn), exported: n.Name.IsExported()}
		if fn != nil {
			v.eng.byObj[fn] = sum
		}
	case *ast.FuncLit:
		pname := "func"
		if p := v.current(); p != nil {
			pname = p.name
		}
		line := v.eng.prog.Fset.Position(n.Pos()).Line
		sum = &funcSum{lit: n, pkg: v.pkg, pos: n.Pos(), name: fmt.Sprintf("%s.func@%d", pname, line)}
		v.eng.byLit[n] = sum
	default:
		sum = &funcSum{pkg: v.pkg, name: "func"}
	}
	v.eng.sums = append(v.eng.sums, sum)
	v.stack = append(v.stack, sum)
}

func (v *ipVisitor) exitFunc(ast.Node) { v.stack = v.stack[:len(v.stack)-1] }

func (v *ipVisitor) visitStmt(s ast.Stmt, held heldSet) {
	cur := v.current()
	if cur == nil {
		return
	}
	switch st := s.(type) {
	case *ast.SendStmt:
		cur.blocks = append(cur.blocks, blockOp{"channel send", st.Arrow})
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			cur.blocks = append(cur.blocks, blockOp{"select without default", st.Pos()})
		}
		return
	case *ast.GoStmt:
		v.recordCall(st.Call, held, true, false)
		if sel, ok := unwrapFun(st.Call.Fun).(*ast.SelectorExpr); ok {
			v.walkExpr(sel.X, held)
		}
		v.walkExprs(st.Call.Args, held)
		return
	case *ast.DeferStmt:
		v.recordCall(st.Call, held, false, true)
		if sel, ok := unwrapFun(st.Call.Fun).(*ast.SelectorExpr); ok {
			v.walkExpr(sel.X, held)
		}
		v.walkExprs(st.Call.Args, held)
		return
	}
	v.walkExprs(shallowExprs(s), held)
}

func (v *ipVisitor) walkExprs(exprs []ast.Expr, held heldSet) {
	for _, e := range exprs {
		v.walkExpr(e, held)
	}
}

// walkExpr records call sites, channel receives and function-value
// references inside one expression, staying out of nested literals
// (the scanner walks those itself).
func (v *ipVisitor) walkExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	cur := v.current()
	// skip marks identifiers that are the callee of an enclosing call —
	// those are call uses, not value references. ast.Inspect is
	// pre-order, so a CallExpr marks its Fun before the Fun is visited.
	skip := make(map[ast.Node]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			v.recordCall(n, held, false, false)
			skip[unwrapFun(n.Fun)] = true
		case *ast.SelectorExpr:
			skip[n.Sel] = true
			if !skip[n] {
				v.noteValueRef(n.Sel)
			}
		case *ast.Ident:
			if !skip[n] {
				v.noteValueRef(n)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				cur.blocks = append(cur.blocks, blockOp{"channel receive", n.Pos()})
			}
		}
		return true
	})
}

// noteValueRef records that a module function is used as a value (stored
// in a field, registered as a handler, …). Such functions have callers
// the call graph cannot see, so mustEntry treats them as roots.
func (v *ipVisitor) noteValueRef(id *ast.Ident) {
	if fn, ok := v.pkg.Info.Uses[id].(*types.Func); ok && v.moduleFunc(fn) {
		v.eng.valueRef[fn] = true
	}
}

func (v *ipVisitor) moduleFunc(fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	mod := v.eng.prog.Module
	return p.Path() == mod || len(p.Path()) > len(mod) && p.Path()[:len(mod)+1] == mod+"/"
}

// recordCall classifies one call site. isDefer drops the held sets: a
// deferred call runs at return, when the locks held here may already be
// released (and others taken).
func (v *ipVisitor) recordCall(call *ast.CallExpr, held heldSet, isGo, isDefer bool) {
	cur := v.current()
	if cur == nil {
		return
	}
	info := v.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if _, meth, ok := mutexMethod(info, call); ok {
		if meth == "Lock" || meth == "RLock" {
			if canon := canonMutexOf(info, call); canon != "" {
				cur.acquires = append(cur.acquires, acqOp{
					canon: canon, reader: meth == "RLock", pos: call.Pos(), held: canonHeldOf(held),
				})
			}
		}
		return
	}
	// A literal handed to sync.Once.Do runs synchronously right here.
	if fl := onceDoLit(info, call); fl != nil {
		v.litMode[fl] = litSync
		cur.calls = append(cur.calls, callOp{
			pos: fl.Pos(), lit: fl, held: held.clone(), canonHeld: canonHeldOf(held),
		})
	}
	op := callOp{pos: call.Pos(), isGo: isGo}
	if !isDefer && !isGo {
		op.held = held.clone()
		op.canonHeld = canonHeldOf(held)
	}
	if what, ok := blockingCall(info, call); ok {
		cur.blocks = append(cur.blocks, blockOp{what, call.Pos()})
		op.blockingAPI = true
	}
	switch f := unwrapFun(call.Fun).(type) {
	case *ast.FuncLit:
		mode := litSync
		if isGo {
			mode = litGo
		}
		v.litMode[f] = mode
		op.lit = f
	case *ast.Ident:
		if !v.classify(&op, info.Uses[f]) {
			return
		}
	case *ast.SelectorExpr:
		if !v.classify(&op, info.Uses[f.Sel]) {
			return
		}
	default:
		op.dynamic = true
	}
	cur.calls = append(cur.calls, op)
}

// classify resolves the callee object; false means the call needs no
// edge (builtin, conversion, or a leaf outside the module — assumed
// non-blocking unless blockingCall already said otherwise).
func (v *ipVisitor) classify(op *callOp, obj types.Object) bool {
	switch o := obj.(type) {
	case *types.Func:
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			op.ifaceFn = o
			return true
		}
		if v.moduleFunc(o) {
			op.staticFn = o
			return true
		}
		return false
	case *types.Var:
		op.dynamic = true
		return true
	default:
		return false
	}
}

// computeMayBlock is a reverse reachability fixpoint: a function may
// block if it blocks directly or synchronously calls one that may.
// Goroutine launches and unresolved dynamic calls do not propagate.
// It runs on the generic may-fact propagation from dataflow.go.
func (e *engine) computeMayBlock() {
	res := e.propagateMay(
		func(s *funcSum) *dfChain {
			if len(s.blocks) > 0 {
				b := s.blocks[0]
				return &dfChain{what: b.what, pos: b.pos}
			}
			return nil
		},
		func(c *callOp) bool { return !c.isGo && !c.dynamic },
	)
	for _, s := range e.sums {
		s.mayBlock = res[s]
	}
}

// blockChainString renders a callee's witness chain for a finding.
func blockChainString(t *funcSum) string {
	s := t.name
	for _, step := range t.mayBlock.chain {
		s += " → " + step
	}
	return s + " → " + t.mayBlock.what
}

// computeMustEntry intersects, per function, the canonical lock sets
// held at every visible call site. The iteration is optimistic (unknown
// callers are skipped) and monotonically decreasing once a set exists;
// cycles unreachable from any root are clamped to the empty set.
func (e *engine) computeMustEntry() {
	type inEdge struct {
		caller *funcSum
		held   map[string]token.Pos
	}
	in := make(map[*funcSum][]inEdge)
	for _, s := range e.sums {
		for i := range s.calls {
			c := &s.calls[i]
			if c.isGo || c.dynamic {
				continue
			}
			for _, t := range c.callees {
				in[t] = append(in[t], inEdge{s, c.canonHeld})
			}
		}
	}
	rooted := func(s *funcSum) bool {
		if s.exported || (s.obj != nil && e.valueRef[s.obj]) {
			return true
		}
		return len(in[s]) == 0
	}
	for _, s := range e.sums {
		if rooted(s) {
			s.mustEntry = map[string]bool{}
		}
	}
	maxRounds := 2*len(e.sums) + 4
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, t := range e.sums {
			if rooted(t) {
				continue
			}
			var acc map[string]bool
			have := false
			for _, ed := range in[t] {
				if ed.caller.mustEntry == nil {
					continue
				}
				contrib := make(map[string]bool, len(ed.held)+len(ed.caller.mustEntry))
				for k := range ed.held {
					contrib[k] = true
				}
				for k := range ed.caller.mustEntry {
					contrib[k] = true
				}
				if !have {
					acc, have = contrib, true
					continue
				}
				for k := range acc {
					if !contrib[k] {
						delete(acc, k)
					}
				}
			}
			if have && !sameKeys(acc, t.mustEntry) {
				t.mustEntry = acc
				changed = true
			}
		}
		if !changed {
			clamped := false
			for _, s := range e.sums {
				if s.mustEntry == nil {
					s.mustEntry = map[string]bool{}
					clamped = true
				}
			}
			if !clamped {
				return
			}
		}
	}
	for _, s := range e.sums {
		if s.mustEntry == nil {
			s.mustEntry = map[string]bool{}
		}
	}
}

func sameKeys(a map[string]bool, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// computeMayEntry unions, per function, the canonical locks held at any
// visible call site, keeping one witness predecessor per lock.
func (e *engine) computeMayEntry() {
	for _, s := range e.sums {
		s.mayEntry = make(map[string]entrySrc)
	}
	for changed := true; changed; {
		changed = false
		for _, s := range e.sums {
			for i := range s.calls {
				c := &s.calls[i]
				if c.isGo || c.dynamic {
					continue
				}
				for _, t := range c.callees {
					for k, pos := range c.canonHeld {
						if _, ok := t.mayEntry[k]; !ok {
							t.mayEntry[k] = entrySrc{caller: s, callPos: c.pos, local: true, lockPos: pos}
							changed = true
						}
					}
					for k := range s.mayEntry {
						if _, ok := c.canonHeld[k]; ok {
							continue
						}
						if _, ok := t.mayEntry[k]; !ok {
							t.mayEntry[k] = entrySrc{caller: s, callPos: c.pos}
							changed = true
						}
					}
				}
			}
		}
	}
}

// entryChain reconstructs one call chain explaining why lock key may be
// held when s is entered, outermost caller first, ending at s.
func (e *engine) entryChain(s *funcSum, key string) []string {
	chain := []string{s.name}
	seen := map[*funcSum]bool{s: true}
	cur := s
	for {
		src, ok := cur.mayEntry[key]
		if !ok || src.caller == nil || seen[src.caller] {
			break
		}
		chain = append([]string{src.caller.name}, chain...)
		if src.local {
			break
		}
		cur = src.caller
		seen[cur] = true
	}
	return chain
}
