package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseCFG parses a single function body and builds its CFG.
func parseCFG(t *testing.T, body string) *cfg {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return buildCFG(fn.Body)
}

// nodeLabel renders a node for test assertions.
func nodeLabel(n *cfgNode) string {
	switch nd := n.node.(type) {
	case nil:
		return "synthetic"
	case *ast.ExprStmt:
		if call, ok := nd.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return "call:" + id.Name
			}
		}
		return "expr"
	case *ast.ReturnStmt:
		return "return"
	case *ast.DeferStmt:
		return "defer"
	case *ast.BranchStmt:
		return nd.Tok.String()
	case *ast.Ident:
		return "cond:" + nd.Name
	default:
		return strings.TrimPrefix(strings.TrimPrefix(
			strings.Split(strings.TrimPrefix(
				strings.Replace(
					strings.Replace(
						nodeTypeName(nd), "*ast.", "", 1),
					"Stmt", "", 1), "*"), "{")[0], "ast."), "*")
	}
}

func nodeTypeName(n ast.Node) string {
	switch n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.ForStmt:
		return "for"
	case *ast.RangeStmt:
		return "range"
	case *ast.IfStmt:
		return "if"
	case *ast.CaseClause:
		return "case"
	case *ast.SwitchStmt:
		return "switch"
	case *ast.SelectStmt:
		return "select"
	case *ast.LabeledStmt:
		return "label"
	case *ast.BinaryExpr, *ast.Ident, *ast.CallExpr, *ast.UnaryExpr:
		return "cond"
	default:
		return "stmt"
	}
}

// reachableFromEntry walks succs from entry and reports whether exit is
// reached and how many nodes are visited.
func reachableFromEntry(c *cfg) (exitReached bool, visited int) {
	seen := map[*cfgNode]bool{}
	var walk func(n *cfgNode)
	walk = func(n *cfgNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n == c.exit {
			exitReached = true
		}
		for _, s := range n.succs {
			walk(s)
		}
	}
	walk(c.entry)
	return exitReached, len(seen)
}

// findNode returns the first node whose label matches.
func findNode(t *testing.T, c *cfg, label string) *cfgNode {
	t.Helper()
	for _, n := range c.nodes {
		if nodeLabel(n) == label {
			return n
		}
	}
	t.Fatalf("no node labeled %q", label)
	return nil
}

func succLabels(n *cfgNode) []string {
	var out []string
	for _, s := range n.succs {
		out = append(out, nodeLabel(s))
	}
	return out
}

func hasSucc(n *cfgNode, target *cfgNode) bool {
	for _, s := range n.succs {
		if s == target {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	c := parseCFG(t, "a()\nb()\nc()")
	ok, _ := reachableFromEntry(c)
	if !ok {
		t.Fatal("exit not reachable")
	}
	a := findNode(t, c, "call:a")
	b := findNode(t, c, "call:b")
	if !hasSucc(a, b) {
		t.Errorf("a succs = %v, want edge to call:b", succLabels(a))
	}
	cc := findNode(t, c, "call:c")
	if !hasSucc(cc, c.exit) {
		t.Errorf("c succs = %v, want edge to exit", succLabels(cc))
	}
}

func TestCFGBranchJoin(t *testing.T) {
	// Both arms of the if must join at the following statement, and a
	// missing else means the condition edges there directly.
	c := parseCFG(t, "if x {\n\ta()\n} else {\n\tb()\n}\nj()")
	j := findNode(t, c, "call:j")
	if len(j.preds) != 2 {
		t.Fatalf("join preds = %v, want both arms", predLabels(j))
	}
	c2 := parseCFG(t, "if x {\n\ta()\n}\nj()")
	j2 := findNode(t, c2, "call:j")
	if len(j2.preds) != 2 {
		t.Fatalf("no-else join preds = %v, want arm + cond", predLabels(j2))
	}
}

func predLabels(n *cfgNode) []string {
	var out []string
	for _, p := range n.preds {
		out = append(out, nodeLabel(p))
	}
	return out
}

func TestCFGReturnSkipsJoin(t *testing.T) {
	// The returning arm must NOT flow into the join statement.
	c := parseCFG(t, "if x {\n\treturn\n}\nj()")
	j := findNode(t, c, "call:j")
	for _, p := range j.preds {
		if _, isRet := p.node.(*ast.ReturnStmt); isRet {
			t.Fatal("return statement flows into the join")
		}
	}
	ret := findNode(t, c, "return")
	if !hasSucc(ret, c.exit) {
		t.Error("return does not edge to exit")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	c := parseCFG(t, "for i := 0; i < n; i++ {\n\tbody()\n}\nafter()")
	// The post statement (i++) must edge back to the condition.
	var post *cfgNode
	for _, n := range c.nodes {
		if _, ok := n.node.(*ast.IncDecStmt); ok {
			post = n
		}
	}
	if post == nil {
		t.Fatal("no node for i++")
	}
	var cond *cfgNode
	for _, n := range c.nodes {
		if be, ok := n.node.(*ast.BinaryExpr); ok && be.Op == token.LSS {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("no node for loop condition")
	}
	if !hasSucc(post, cond) {
		t.Error("post statement has no back edge to the condition")
	}
	// The condition must flow both into the body and out to after().
	after := findNode(t, c, "call:after")
	if !hasSucc(cond, after) {
		t.Errorf("cond succs = %v, want edge to call:after", succLabels(cond))
	}
	body := findNode(t, c, "call:body")
	if !hasSucc(cond, body) {
		t.Errorf("cond succs = %v, want edge to call:body", succLabels(body))
	}
}

func TestCFGInfiniteLoopNoFallthrough(t *testing.T) {
	// `for {}` without break never reaches the next statement; exit is
	// unreachable because there is no return either.
	c := parseCFG(t, "for {\n\tbody()\n}")
	ok, _ := reachableFromEntry(c)
	if ok {
		t.Fatal("exit reachable through an infinite loop with no break")
	}
	// With a break it must fall through.
	c2 := parseCFG(t, "for {\n\tif x {\n\t\tbreak\n\t}\n}\nafter()")
	ok2, _ := reachableFromEntry(c2)
	if !ok2 {
		t.Fatal("exit unreachable despite break")
	}
	br := findNode(t, c2, "break")
	after := findNode(t, c2, "call:after")
	if !hasSucc(br, after) {
		t.Errorf("break succs = %v, want edge to call:after", succLabels(br))
	}
}

func TestCFGRangeLoop(t *testing.T) {
	c := parseCFG(t, "for _, v := range xs {\n\tuse(v)\n}\nafter()")
	head := findNode(t, c, "range")
	body := findNode(t, c, "call:use")
	after := findNode(t, c, "call:after")
	if !hasSucc(head, body) || !hasSucc(head, after) {
		t.Errorf("range head succs = %v, want body and after", succLabels(head))
	}
	if !hasSucc(body, head) {
		t.Errorf("body succs = %v, want back edge to range head", succLabels(body))
	}
}

func TestCFGContinueGoesToLoopHead(t *testing.T) {
	c := parseCFG(t, "for i := 0; i < n; i++ {\n\tif skip {\n\t\tcontinue\n\t}\n\tbody()\n}")
	cont := findNode(t, c, "continue")
	// continue flows through the post statement, not directly to head.
	var post *cfgNode
	for _, n := range c.nodes {
		if _, ok := n.node.(*ast.IncDecStmt); ok {
			post = n
		}
	}
	if post == nil || !hasSucc(cont, post) {
		t.Errorf("continue succs = %v, want edge to post statement", succLabels(cont))
	}
	body := findNode(t, c, "call:body")
	if hasSucc(cont, body) {
		t.Error("continue falls through into the loop body")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := parseCFG(t, "L:\nfor {\n\tfor {\n\t\tbreak L\n\t}\n}\nafter()")
	br := findNode(t, c, "break")
	after := findNode(t, c, "call:after")
	if !hasSucc(br, after) {
		t.Errorf("labeled break succs = %v, want edge past the outer loop", succLabels(br))
	}
}

func TestCFGDeferIsOrdinaryNode(t *testing.T) {
	// A defer in a branch is on that branch's path only.
	c := parseCFG(t, "if x {\n\tdefer rel()\n\treturn\n}\nj()")
	d := findNode(t, c, "defer")
	var ret *cfgNode
	for _, s := range d.succs {
		if _, ok := s.node.(*ast.ReturnStmt); ok {
			ret = s
		}
	}
	if ret == nil {
		t.Fatalf("defer succs = %v, want the branch's return", succLabels(d))
	}
	j := findNode(t, c, "call:j")
	for _, p := range j.preds {
		if p == d {
			t.Fatal("defer node flows into the other branch's join")
		}
	}
}

func TestCFGSwitchJoins(t *testing.T) {
	c := parseCFG(t, "switch x {\ncase 1:\n\ta()\ncase 2:\n\tb()\ndefault:\n\td()\n}\nj()")
	j := findNode(t, c, "call:j")
	if len(j.preds) != 3 {
		t.Fatalf("switch join preds = %v, want all three clauses", predLabels(j))
	}
	// Without a default the tag itself falls through too.
	c2 := parseCFG(t, "switch x {\ncase 1:\n\ta()\n}\nj()")
	j2 := findNode(t, c2, "call:j")
	if len(j2.preds) != 2 {
		t.Fatalf("no-default switch join preds = %v, want clause + head", predLabels(j2))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := parseCFG(t, "switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\n}\nj()")
	ft := findNode(t, c, "fallthrough")
	b := findNode(t, c, "call:b")
	// fallthrough chains into clause 2's start node, whose body is b().
	reached := false
	for _, s := range ft.succs {
		if cc, ok := s.node.(*ast.CaseClause); ok && cc.List != nil {
			if hasSucc(s, b) {
				reached = true
			}
		}
	}
	if !reached {
		t.Errorf("fallthrough succs = %v, want chain into case 2", succLabels(ft))
	}
	a := findNode(t, c, "call:a")
	j := findNode(t, c, "call:j")
	if hasSucc(a, j) {
		t.Error("clause with trailing fallthrough also falls out of the switch")
	}
}

func TestCFGPanicEndsPath(t *testing.T) {
	c := parseCFG(t, "if x {\n\tpanic(\"boom\")\n}\nj()")
	p := findNode(t, c, "call:panic")
	if len(p.succs) != 0 {
		t.Errorf("panic succs = %v, want none", succLabels(p))
	}
	j := findNode(t, c, "call:j")
	for _, pr := range j.preds {
		if pr == p {
			t.Fatal("panic path flows into the join")
		}
	}
}

func TestCFGSelect(t *testing.T) {
	c := parseCFG(t, "select {\ncase <-ch:\n\ta()\ndefault:\n\tb()\n}\nj()")
	j := findNode(t, c, "call:j")
	if len(j.preds) != 2 {
		t.Fatalf("select join preds = %v, want both clauses", predLabels(j))
	}
	// select{} blocks forever.
	c2 := parseCFG(t, "select {}\nj()")
	ok, _ := reachableFromEntry(c2)
	if ok {
		t.Fatal("exit reachable past select{}")
	}
}

func TestCFGGoto(t *testing.T) {
	c := parseCFG(t, "i := 0\nL:\n\ti++\nif i < 3 {\n\tgoto L\n}\nj()")
	g := findNode(t, c, "goto")
	lbl := findNode(t, c, "label")
	if !hasSucc(g, lbl) {
		t.Errorf("goto succs = %v, want edge to label node", succLabels(g))
	}
	ok, _ := reachableFromEntry(c)
	if !ok {
		t.Fatal("exit not reachable")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	c := parseCFG(t, "switch v := x.(type) {\ncase int:\n\ta(v)\ncase string:\n\tb(v)\n}\nj()")
	j := findNode(t, c, "call:j")
	// two clauses + head (no default)
	if len(j.preds) != 3 {
		t.Fatalf("type-switch join preds = %v, want 2 clauses + head", predLabels(j))
	}
}

func TestCFGEveryNodeHasPredsExceptEntry(t *testing.T) {
	c := parseCFG(t, "a()\nif x {\n\tb()\n}\nfor i := range xs {\n\tuse(i)\n}\nreturn")
	for _, n := range c.nodes {
		if n == c.entry {
			continue
		}
		if len(n.preds) == 0 {
			t.Errorf("node %s has no predecessors", nodeLabel(n))
		}
	}
}
