package analysis

import (
	"sort"
	"strings"
	"testing"
)

// cgDebug renders every resolved call-graph edge as a finding, so the
// callgraph fixture can assert construction rules with want comments
// through the same harness as the real analyzers.
type cgDebug struct{}

func (cgDebug) Name() string { return "callgraph" }

func (cgDebug) Run(prog *Program) []Finding {
	var out []Finding
	for _, n := range prog.CallGraph().Nodes {
		for _, e := range n.Edges {
			var msg string
			switch e.Kind {
			case EdgeStatic:
				if len(e.Targets) > 0 {
					msg = "static call to " + e.Targets[0].Name
				}
			case EdgeInterface:
				var names []string
				for _, t := range e.Targets {
					names = append(names, t.Name)
				}
				sort.Strings(names)
				msg = "interface call resolving to " + strings.Join(names, ", ")
			case EdgeGo:
				if len(e.Targets) > 0 {
					msg = "goroutine launch of " + e.Targets[0].Name
				}
			case EdgeDynamic:
				msg = "dynamic call (unresolved)"
			}
			if msg == "" {
				continue
			}
			out = append(out, Finding{
				Pos:      prog.Fset.Position(e.Pos),
				Analyzer: "callgraph",
				Message:  msg,
			})
		}
	}
	return out
}

func TestCallgraphFixture(t *testing.T) { runFixture(t, "callgraph", cgDebug{}) }
