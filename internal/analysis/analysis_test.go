package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: each testdata/<name> directory is a tiny module seeded
// with violations. A `// want "substr"` comment (several quoted strings
// allowed per comment) marks the line where the named analyzer must
// report a finding whose message contains the substring; every other
// line must stay quiet. The harness runs findings through the same
// //sdvmlint:allow filtering as the CLI, so directive suppression is
// exercised too.

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(".+)`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

type wantKey struct {
	file string // basename: fixtures never repeat file names
	line int
}

func collectWants(prog *Program) map[wantKey][]string {
	wants := make(map[wantKey][]string)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := wantKey{filepath.Base(pos.Filename), pos.Line}
					for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
						wants[k] = append(wants[k], q[1])
					}
				}
			}
		}
	}
	return wants
}

func runFixture(t *testing.T, fixture string, as ...Analyzer) {
	t.Helper()
	prog, err := Load(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	wants := collectWants(prog)
	for _, f := range Run(prog, as) {
		k := wantKey{filepath.Base(f.Pos.Filename), f.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s:%d: %s", k.file, k.line, f.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rem := range wants {
		for _, w := range rem {
			t.Errorf("missing finding at %s:%d matching %q", k.file, k.line, w)
		}
	}
}

func TestLockholdFixture(t *testing.T) { runFixture(t, "lockhold", newLockhold()) }

func TestSleepfreeFixture(t *testing.T) { runFixture(t, "sleepfree", newSleepfree(nil)) }

func TestGolifecycleFixture(t *testing.T) { runFixture(t, "golifecycle", newGolifecycle()) }

func TestGuardedbyFixture(t *testing.T) { runFixture(t, "guardedby", newGuardedby()) }

func TestWiredispatchFixture(t *testing.T) { runFixture(t, "wiredispatch", newWiredispatch()) }

func TestLockorderFixture(t *testing.T) { runFixture(t, "lockorder", newLockorder()) }

func TestAtomicmixFixture(t *testing.T) { runFixture(t, "atomicmix", newAtomicmix()) }

func TestChanownerFixture(t *testing.T) { runFixture(t, "chanowner", newChanowner()) }

func TestWiretaintFixture(t *testing.T) { runFixture(t, "wiretaint", newWiretaint()) }

func TestAllocfreeFixture(t *testing.T) { runFixture(t, "allocfree", newAllocfree()) }

func TestPoolownerFixture(t *testing.T) { runFixture(t, "poolowner", newPoolowner()) }

func TestDetpathFixture(t *testing.T) { runFixture(t, "detpath", newDetpath()) }

// TestDirectivesFixture runs two analyzers at once over a fixture built
// around //sdvmlint:allow directives — multi-analyzer lists in comma and
// space form, directives above multi-line statements — and doubles as
// the regression test for _test.go exclusion: the fixture contains an
// excluded_test.go whose violations must never surface.
func TestDirectivesFixture(t *testing.T) {
	runFixture(t, "directives", newLockhold(), newSleepfree(nil))
}

// TestRepoClean runs the full suite over the repository itself, so `go
// test ./...` fails the build on any unsuppressed finding — the same
// gate cmd/sdvmlint enforces in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := filepath.Join("..", "..")
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	findings := Run(prog, All())
	// The committed baseline holds the justified remaining findings
	// (the codec's allocations pending ROADMAP item 4); anything beyond
	// it is a regression.
	if base := filepath.Join(root, "lint.baseline.json"); fileExists(base) {
		findings, err = ApplyBaseline(findings, root, base)
		if err != nil {
			t.Fatalf("applying baseline: %v", err)
		}
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
