package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomicmix enforces access-discipline consistency for fields used with
// the sync/atomic package-level functions: a struct field passed as
// `&x.f` to atomic.Add/Load/Store/Swap/CompareAndSwap anywhere in the
// module must never be read or written plainly, in any package — a
// single plain access races with every atomic one. (The typed
// atomic.Int64-style wrappers need no analyzer: their fields are
// unexported and only reachable through atomic methods.)
//
// One exemption mirrors guardedby: accesses through a variable declared
// in the enclosing function body (a freshly constructed value that has
// not escaped yet) are unordered with nothing and stay quiet.
type atomicmix struct{}

func newAtomicmix() *atomicmix { return &atomicmix{} }

func (a *atomicmix) Name() string { return "atomicmix" }

func (a *atomicmix) Run(prog *Program) []Finding {
	atomicAt := make(map[*types.Var]token.Pos)    // first atomic use of each field
	atomicSel := make(map[*ast.SelectorExpr]bool) // the &x.f selectors inside atomic calls
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) || len(call.Args) == 0 {
					return true
				}
				u, ok := unwrapFun(call.Args[0]).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					return true
				}
				sel, ok := unwrapFun(u.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if fv := fieldVarOf(pkg.Info, sel); fv != nil {
					if _, seen := atomicAt[fv]; !seen {
						atomicAt[fv] = sel.Pos()
					}
					atomicSel[sel] = true
				}
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return nil
	}
	var out []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || atomicSel[sel] {
						return true
					}
					fv := fieldVarOf(pkg.Info, sel)
					if fv == nil {
						return true
					}
					atPos, mixed := atomicAt[fv]
					if !mixed {
						return true
					}
					// Freshly constructed value, not yet shared.
					if base, ok := sel.X.(*ast.Ident); ok {
						if obj := pkg.Info.ObjectOf(base); obj != nil &&
							obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End() {
							return true
						}
					}
					at := prog.Fset.Position(atPos)
					out = append(out, Finding{
						Pos:      prog.Fset.Position(sel.Pos()),
						Analyzer: "atomicmix",
						Message: fmt.Sprintf("field %s is accessed with sync/atomic (%s:%d) but read/written plainly here",
							fieldDisplay(fv, sel, pkg.Info), shortFile(at), at.Line),
					})
					return true
				})
			}
		}
	}
	return out
}

// isAtomicCall reports a call to a package-level sync/atomic function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldVarOf resolves a selector to the struct field it reads, if any.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// fieldDisplay names a field as Type.field when the receiver type is
// named, falling back to the printed expression.
func fieldDisplay(fv *types.Var, sel *ast.SelectorExpr, info *types.Info) string {
	if selection := info.Selections[sel]; selection != nil {
		if named := derefNamed(selection.Recv()); named != nil {
			return named.Obj().Name() + "." + fv.Name()
		}
	}
	return types.ExprString(sel)
}
