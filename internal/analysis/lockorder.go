package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockorder builds the global mutex-acquisition graph and reports every
// cycle as a potential deadlock. Nodes are canonical mutex identities
// (see canonMutex); there is an edge A → B whenever some function
// acquires B while A is held — either locally, or at entry on some
// visible call path (the engine's mayEntry set). Each reported cycle
// carries one witness per edge: the acquiring function and, for
// entry-held locks, the call chain that carried the lock in.
//
// Self-edges are deliberately not reported: two acquisitions with the
// same canonical identity usually guard different instances (per-object
// locks walked in a loop) or are an unlock/relock of the same instance,
// and the canonical key cannot tell these apart.
type lockorder struct{}

func newLockorder() *lockorder { return &lockorder{} }

func (a *lockorder) Name() string { return "lockorder" }

// orderWitness explains one acquisition edge.
type orderWitness struct {
	sum     *funcSum
	pos     token.Pos // position of the inner acquisition
	entry   bool      // the outer lock was held at entry, not locally
	lockPos token.Pos // where the outer lock was taken, when local
}

type orderEdge struct {
	from, to string
	wit      orderWitness
}

func (a *lockorder) Run(prog *Program) []Finding {
	eng := prog.engine()
	edges := make(map[[2]string]*orderEdge)
	addEdge := func(from, to string, w orderWitness) {
		k := [2]string{from, to}
		if prev, ok := edges[k]; ok {
			// Prefer a local witness over an entry-propagated one.
			if prev.wit.entry && !w.entry {
				prev.wit = w
			}
			return
		}
		edges[k] = &orderEdge{from: from, to: to, wit: w}
	}
	for _, s := range eng.sums {
		for _, acq := range s.acquires {
			for h, hpos := range acq.held {
				if h == acq.canon {
					continue
				}
				addEdge(h, acq.canon, orderWitness{sum: s, pos: acq.pos, lockPos: hpos})
			}
			for h := range s.mayEntry {
				if h == acq.canon {
					continue
				}
				if _, ok := acq.held[h]; ok {
					continue
				}
				addEdge(h, acq.canon, orderWitness{sum: s, pos: acq.pos, entry: true})
			}
		}
	}
	return a.reportCycles(prog, eng, edges)
}

// reportCycles finds strongly connected components of the acquisition
// graph and emits one finding per component, describing one concrete
// cycle through it with the witness for every edge.
func (a *lockorder) reportCycles(prog *Program, eng *engine, edges map[[2]string]*orderEdge) []Finding {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	comp := sccs(order, adj)
	short := func(k string) string {
		return strings.TrimPrefix(k, eng.prog.Module+"/")
	}
	var out []Finding
	for _, scc := range comp {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		sort.Strings(scc)
		cycle := shortestCycle(scc[0], adj, inSCC)
		if cycle == nil {
			continue
		}
		names := make([]string, 0, len(cycle)+1)
		for _, n := range cycle {
			names = append(names, short(n))
		}
		names = append(names, short(cycle[0]))
		msg := "potential deadlock: lock-order cycle " + strings.Join(names, " → ")
		var pos token.Pos
		for i := range cycle {
			u, v := cycle[i], cycle[(i+1)%len(cycle)]
			e := edges[[2]string{u, v}]
			if e == nil {
				continue
			}
			if pos == token.NoPos {
				pos = e.wit.pos
			}
			at := prog.Fset.Position(e.wit.pos)
			if e.wit.entry {
				chain := eng.entryChain(e.wit.sum, u)
				msg += fmt.Sprintf("; %s acquired in %s (%s:%d) while %s held at entry via %s",
					short(v), e.wit.sum.name, shortFile(at), at.Line, short(u), strings.Join(chain, " → "))
			} else {
				msg += fmt.Sprintf("; %s acquired in %s (%s:%d) while holding %s",
					short(v), e.wit.sum.name, shortFile(at), at.Line, short(u))
			}
		}
		out = append(out, Finding{Pos: prog.Fset.Position(pos), Analyzer: "lockorder", Message: msg})
	}
	return out
}

func shortFile(p token.Position) string {
	f := p.Filename
	for i := len(f) - 1; i >= 0; i-- {
		if f[i] == '/' {
			return f[i+1:]
		}
	}
	return f
}

// sccs is an iterative Tarjan strongly-connected-components pass over
// the deterministic node order.
func sccs(order []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node string
		edge int
	}
	for _, root := range order {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.edge < len(adj[f.node]) {
				w := adj[f.node][f.edge]
				f.edge++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			if low[f.node] == index[f.node] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.node {
						break
					}
				}
				comps = append(comps, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := &work[len(work)-1]
				if low[f.node] < low[p.node] {
					low[p.node] = low[f.node]
				}
			}
		}
	}
	return comps
}

// shortestCycle finds a shortest cycle through start inside one SCC via
// breadth-first search.
func shortestCycle(start string, adj map[string][]string, in map[string]bool) []string {
	prev := map[string]string{start: ""}
	queue := []string{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, w := range adj[n] {
			if !in[w] {
				continue
			}
			if w == start {
				cycle := []string{n}
				for cur := n; prev[cur] != ""; cur = prev[cur] {
					cycle = append([]string{prev[cur]}, cycle...)
				}
				return cycle
			}
			if _, seen := prev[w]; !seen {
				prev[w] = n
				queue = append(queue, w)
			}
		}
	}
	return nil
}
