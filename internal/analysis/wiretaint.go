package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wiretaint tracks values decoded from network bytes into the places
// where an unvalidated value is dangerous. Taint sources:
//
//   - calls to the decode methods of a Reader type declared in a package
//     whose base name is "wire" (Uint32, SiteID, Addr, Bytes32, …;
//     SliceLen is excluded — it is the validating decode);
//   - field selections on struct types declared in a wire package
//     (Message headers, payload fields, Microframe, MemObject, Target):
//     every wire struct may have been built by a remote peer;
//   - encoding/binary byte-order reads (Uint16/Uint32/Uint64) — the raw
//     framing path in netmgr and the transports.
//
// Sinks — reported when reached by a tainted value with no recognized
// validation between them:
//
//   - make() size and capacity arguments (map sizing included);
//   - slice/array/string indexing and slice-expression bounds;
//   - for-loop bounds (a comparison in a for condition);
//   - routing: a tainted types.SiteID passed as the destination of a
//     module Send/SendMsg/Request/RequestAddr/PushFrame call.
//
// Recognized validations (flow-insensitive, with one flow-sensitive
// exception) applied per function:
//
//   - an upper-bound comparison against an untainted value
//     (n < limit, n <= cap, limit > n, …) anywhere in the function;
//   - a lower-bound comparison (n > limit) only when the enclosing if
//     body terminates — the "guard and bail" idiom
//     (if n > max { return });
//   - equality/inequality against an untainted value, and switch
//     dispatch on the value;
//   - a Valid()/IsValid() method call on the value;
//   - use as a map index (roster/directory membership);
//   - (*wire.Reader).SliceLen results are never tainted at all.
//
// The analysis is interprocedural over the call-graph engine: each
// function gets a transfer summary — whether it returns tainted data,
// and which parameters flow to which sinks unvalidated — and summaries
// join at call sites until fixpoint, so a tainted argument that reaches
// a sink three calls deep is reported at the point where wire data
// enters the chain, with the callee witness chain in the message.
//
// Soundness caveats: validation is mostly flow-insensitive (a check
// anywhere in the function counts, even after the use); dynamic and
// unresolved interface calls do not propagate; returns tainted only by
// a parameter are not modeled; closures do not inherit taint of
// captured variables.
type wiretaint struct{}

func newWiretaint() Analyzer { return wiretaint{} }

func (wiretaint) Name() string { return "wiretaint" }

// Taint lattice element: a bitset. Bit 0 is "tainted by wire data";
// bit i+1 is "tainted by parameter i".
const wtWire uint64 = 1

func wtParam(i int) uint64 {
	if i >= 62 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// wtSink is one summary entry: data arriving through parameter param
// reaches the described sink with no validation in between.
type wtSink struct {
	param int
	what  string
	pos   token.Pos
	chain []string // callee names from the summarized function to the sink
}

type wtSummary struct {
	retTainted bool
	sinks      []wtSink
	sinkKeys   map[string]bool
}

func (sum *wtSummary) addSink(s wtSink) bool {
	key := fmt.Sprintf("%d|%s|%s", s.param, s.what, strings.Join(s.chain, "→"))
	if sum.sinkKeys == nil {
		sum.sinkKeys = make(map[string]bool)
	}
	if sum.sinkKeys[key] {
		return false
	}
	sum.sinkKeys[key] = true
	sum.sinks = append(sum.sinks, s)
	return true
}

// readerSources are the Reader decode methods whose results are tainted.
// SliceLen is absent by design: it validates the decoded count against
// the remaining payload before returning it.
var readerSources = map[string]bool{
	"Uint8": true, "Uint16": true, "Uint32": true, "Uint64": true,
	"Int16": true, "Int32": true, "Int64": true, "Float64": true,
	"Bool": true, "String": true, "Bytes32": true,
	"SiteID": true, "ProgramID": true, "ThreadID": true, "Addr": true,
}

// routeFuncs are module functions whose types.SiteID arguments are
// routing decisions.
var routeFuncs = map[string]bool{
	"Send": true, "SendMsg": true, "Request": true, "RequestAddr": true,
	"PushFrame": true,
}

func (wiretaint) Run(prog *Program) []Finding {
	e := prog.engine()
	w := &wtState{
		eng:       e,
		summaries: make(map[*funcSum]*wtSummary, len(e.sums)),
		callops:   make(map[*funcSum]map[token.Pos]*callOp, len(e.sums)),
	}
	for _, s := range e.sums {
		w.summaries[s] = &wtSummary{}
		ops := make(map[token.Pos]*callOp, len(s.calls))
		for i := range s.calls {
			ops[s.calls[i].pos] = &s.calls[i]
		}
		w.callops[s] = ops
	}
	// Propagate transfer summaries to fixpoint: a round recomputes every
	// function against current callee summaries; summaries only grow.
	const maxRounds = 12
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, s := range e.sums {
			if w.analyze(s, nil) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final pass: collect findings with stable summaries.
	var out []Finding
	seen := make(map[string]bool)
	for _, s := range e.sums {
		w.analyze(s, func(pos token.Pos, msg string) {
			p := prog.Fset.Position(pos)
			key := fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, msg)
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, Finding{Pos: p, Analyzer: "wiretaint", Message: msg})
		})
	}
	return out
}

type wtState struct {
	eng       *engine
	summaries map[*funcSum]*wtSummary
	callops   map[*funcSum]map[token.Pos]*callOp
}

// fnCtx is the per-function analysis context.
type fnCtx struct {
	w         *wtState
	s         *funcSum
	info      *types.Info
	paramIdx  map[types.Object]int
	objBits   map[types.Object]uint64
	validated map[string]bool
}

// analyze runs the local taint analysis for one function, folding the
// results into its summary; report, when non-nil, receives local
// findings. It returns whether the summary grew.
func (w *wtState) analyze(s *funcSum, report func(token.Pos, string)) bool {
	body := funcBody(s)
	if body == nil {
		return false
	}
	c := &fnCtx{
		w:         w,
		s:         s,
		info:      s.pkg.Info,
		paramIdx:  make(map[types.Object]int),
		objBits:   make(map[types.Object]uint64),
		validated: make(map[string]bool),
	}
	if sig := funcSig(s); sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			c.paramIdx[sig.Params().At(i)] = i
		}
	}
	// Phase A: propagate taint through local assignments, ignoring
	// validation, until stable (maximal taint).
	for {
		if !c.propagateOnce(body, false) {
			break
		}
	}
	// Phase B: collect validated expressions using the maximal taint.
	c.collectValidations(body)
	// Phase C: recompute object taint honoring validation.
	for k := range c.objBits {
		delete(c.objBits, k)
	}
	for {
		if !c.propagateOnce(body, true) {
			break
		}
	}
	// Phase D: sinks and the return-taint bit.
	return c.findSinks(body, report)
}

// propagateOnce walks the body once, updating objBits from assignments
// and range statements. Reports whether anything changed.
func (c *fnCtx) propagateOnce(body *ast.BlockStmt, useValidated bool) bool {
	changed := false
	merge := func(id ast.Expr, bits uint64) {
		ident, ok := id.(*ast.Ident)
		if !ok || ident.Name == "_" {
			return
		}
		obj := c.info.Defs[ident]
		if obj == nil {
			obj = c.info.Uses[ident]
		}
		if obj == nil {
			return
		}
		if c.objBits[obj]|bits != c.objBits[obj] {
			c.objBits[obj] |= bits
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					merge(n.Lhs[i], c.taintOf(n.Rhs[i], useValidated))
				}
			} else if len(n.Rhs) == 1 {
				// x, y := f() — every LHS gets the call's taint.
				bits := c.taintOf(n.Rhs[0], useValidated)
				for _, lhs := range n.Lhs {
					merge(lhs, bits)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if len(n.Values) == len(n.Names) {
					merge(name, c.taintOf(n.Values[i], useValidated))
				} else if len(n.Values) == 1 {
					merge(name, c.taintOf(n.Values[0], useValidated))
				}
			}
		case *ast.RangeStmt:
			// The value variable carries the container's taint; the key
			// (an index produced by the runtime) is clean.
			if n.Value != nil {
				merge(n.Value, c.taintOf(n.X, useValidated))
			}
		}
		return true
	})
	return changed
}

// taintOf evaluates the taint bits of an expression. With useValidated,
// expressions recognized as validated evaluate clean.
func (c *fnCtx) taintOf(e ast.Expr, useValidated bool) uint64 {
	if e == nil {
		return 0
	}
	if useValidated && c.validated[types.ExprString(e)] {
		return 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[x]
		if obj == nil {
			obj = c.info.Defs[x]
		}
		if obj == nil {
			return 0
		}
		bits := c.objBits[obj]
		if i, ok := c.paramIdx[obj]; ok {
			bits |= wtParam(i)
		}
		return bits
	case *ast.SelectorExpr:
		// Method values carry no taint themselves.
		if _, isFn := c.info.Uses[x.Sel].(*types.Func); isFn {
			return 0
		}
		bits := c.taintOf(x.X, useValidated)
		if wireStruct(c.info.TypeOf(x.X)) {
			bits |= wtWire
		}
		return bits
	case *ast.CallExpr:
		return c.callTaint(x, useValidated)
	case *ast.IndexExpr:
		return c.taintOf(x.X, useValidated)
	case *ast.SliceExpr:
		return c.taintOf(x.X, useValidated)
	case *ast.StarExpr:
		return c.taintOf(x.X, useValidated)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return 0 // channel contents: out of scope
		}
		return c.taintOf(x.X, useValidated)
	case *ast.ParenExpr:
		return c.taintOf(x.X, useValidated)
	case *ast.TypeAssertExpr:
		return c.taintOf(x.X, useValidated)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return 0 // booleans are not interesting taint
		case token.REM, token.AND:
			// n % len(x), n & mask: clamped by an untainted right side.
			if c.taintOf(x.Y, useValidated) == 0 {
				return 0
			}
		}
		return c.taintOf(x.X, useValidated) | c.taintOf(x.Y, useValidated)
	case *ast.CompositeLit:
		var bits uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			bits |= c.taintOf(el, useValidated)
		}
		return bits
	}
	return 0
}

// callTaint evaluates the taint of a call expression's result.
func (c *fnCtx) callTaint(call *ast.CallExpr, useValidated bool) uint64 {
	info := c.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return c.taintOf(call.Args[0], useValidated) // conversion
		}
		return 0
	}
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fn].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "make", "new":
				return 0
			case "min", "max":
				// A clamp against any untainted operand bounds the result.
				for _, a := range call.Args {
					if c.taintOf(a, useValidated) == 0 {
						return 0
					}
				}
				var bits uint64
				for _, a := range call.Args {
					bits |= c.taintOf(a, useValidated)
				}
				return bits
			case "append":
				var bits uint64
				for _, a := range call.Args {
					bits |= c.taintOf(a, useValidated)
				}
				return bits
			}
			return 0
		}
	case *ast.SelectorExpr:
		if src, ok := wireSource(info, call, fn); ok {
			if src {
				return wtWire
			}
			return 0
		}
	}
	// Module calls: a callee summarized as returning tainted data taints
	// the result.
	for _, t := range c.callees(call) {
		if sum := c.w.summaries[t]; sum != nil && sum.retTainted {
			return wtWire
		}
	}
	return 0
}

// wireSource classifies a method call as a taint source. The second
// return is whether the call was recognized as a Reader/byte-order
// method at all (recognized-but-clean covers SliceLen).
func wireSource(info *types.Info, call *ast.CallExpr, sel *ast.SelectorExpr) (tainted, recognized bool) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false, false
	}
	named := derefNamed(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false, false
	}
	pkg := named.Obj().Pkg().Path()
	switch {
	case pkgBase(pkg) == "wire" && named.Obj().Name() == "Reader":
		return readerSources[fn.Name()], true
	case pkg == "encoding/binary":
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64":
			return true, true
		}
	}
	return false, false
}

// wireStruct reports whether t is (a pointer to) a named struct declared
// in a package whose base name is "wire" — a type a remote peer can
// populate. The codec's own Reader/Writer are excluded.
func wireStruct(t types.Type) bool {
	named := derefNamed(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if pkgBase(named.Obj().Pkg().Path()) != "wire" {
		return false
	}
	name := named.Obj().Name()
	if name == "Reader" || name == "Writer" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// collectValidations walks the body marking expressions the function
// checks before (or, flow-insensitively, anywhere around) use.
func (c *fnCtx) collectValidations(body *ast.BlockStmt) {
	info := c.info
	// Comparisons inside for-conditions are loop-bound sinks, never
	// validations.
	inForCond := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond != nil {
			ast.Inspect(f.Cond, func(m ast.Node) bool {
				inForCond[m] = true
				return true
			})
		}
		return true
	})
	// mark records an expression as validated, unwrapping parens and
	// conversions so a check on uint64(n) also validates n.
	var mark func(e ast.Expr)
	mark = func(e ast.Expr) {
		c.validated[types.ExprString(e)] = true
		switch x := e.(type) {
		case *ast.ParenExpr:
			mark(x.X)
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				mark(x.Args[0])
			}
		}
	}
	// cmpValidates records bounds established by one comparison. Upper
	// bounds (tainted on the small side) validate unconditionally; lower
	// bounds validate only in the guard-and-bail idiom, which the IfStmt
	// case below handles with branch knowledge.
	cmpValidates := func(b *ast.BinaryExpr, bailing bool) {
		x, y := c.taintOf(b.X, false), c.taintOf(b.Y, false)
		switch b.Op {
		case token.EQL, token.NEQ:
			if x != 0 && y == 0 {
				mark(b.X)
			}
			if y != 0 && x == 0 {
				mark(b.Y)
			}
		case token.LSS, token.LEQ: // X < Y: X gains an upper bound
			if x != 0 && y == 0 {
				mark(b.X)
			}
			if bailing && y != 0 && x == 0 {
				mark(b.Y)
			}
		case token.GTR, token.GEQ: // X > Y: Y gains an upper bound
			if y != 0 && x == 0 {
				mark(b.Y)
			}
			if bailing && x != 0 && y == 0 {
				mark(b.X)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			bailing := blockTerminates(n.Body)
			ast.Inspect(n.Cond, func(m ast.Node) bool {
				if b, ok := m.(*ast.BinaryExpr); ok && !inForCond[b] {
					cmpValidates(b, bailing)
				}
				return true
			})
		case *ast.BinaryExpr:
			if !inForCond[n] {
				cmpValidates(n, false)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && c.taintOf(n.Tag, false) != 0 {
				mark(n.Tag)
			}
		case *ast.IndexExpr:
			// Map lookup: membership in a roster/directory validates the
			// key.
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				if c.taintOf(n.Index, false) != 0 {
					mark(n.Index)
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					if fn.Name() == "Valid" || fn.Name() == "IsValid" {
						mark(sel.X)
					}
				}
			}
		}
		return true
	})
}

// blockTerminates reports whether a block's last statement definitely
// leaves the function or loop (return, branch, panic).
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// findSinks performs the final pass: local sink checks, interprocedural
// sink checks through callee summaries, and the return-taint bit. It
// reports whether the function's summary grew.
func (c *fnCtx) findSinks(body *ast.BlockStmt, report func(token.Pos, string)) bool {
	info := c.info
	grew := false
	// sink handles one dangerous use: wire taint reports, parameter
	// taint extends the summary.
	sink := func(pos token.Pos, bits uint64, what string, chain []string) {
		if bits == 0 {
			return
		}
		if bits&wtWire != 0 && report != nil {
			msg := what
			if len(chain) > 0 {
				msg += " (via " + strings.Join(chain, " → ") + ")"
			}
			report(pos, msg)
		}
		for i := 0; i < 62; i++ {
			if bits&wtParam(i) != 0 {
				if c.w.summaries[c.s].addSink(wtSink{param: i, what: what, pos: pos, chain: chain}) {
					grew = true
				}
			}
		}
	}
	eval := func(e ast.Expr) uint64 { return c.taintOf(e, true) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond != nil {
				ast.Inspect(n.Cond, func(m ast.Node) bool {
					if b, ok := m.(*ast.BinaryExpr); ok {
						switch b.Op {
						case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
							sink(b.Pos(), eval(b.X)|eval(b.Y),
								"wire-tainted value used as loop bound without validation", nil)
						}
					}
					return true
				})
			}
		case *ast.IndexExpr:
			switch info.TypeOf(n.X).Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				sink(n.Index.Pos(), eval(n.Index),
					"wire-tainted value used as index without bounds validation", nil)
			case *types.Basic: // string indexing
				sink(n.Index.Pos(), eval(n.Index),
					"wire-tainted value used as index without bounds validation", nil)
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil {
					sink(bound.Pos(), eval(bound),
						"wire-tainted value used as slice bound without validation", nil)
				}
			}
		case *ast.CallExpr:
			c.callSinks(n, sink, eval)
		}
		return true
	})
	// Return taint.
	sum := c.w.summaries[c.s]
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && !sum.retTainted {
			for _, r := range ret.Results {
				if c.taintOf(r, false)&wtWire != 0 {
					sum.retTainted = true
					grew = true
					break
				}
			}
		}
		return true
	})
	return grew
}

// callSinks checks one call site: make sizing, routing destinations and
// tainted arguments flowing into callee parameter sinks.
func (c *fnCtx) callSinks(call *ast.CallExpr, sink func(token.Pos, uint64, string, []string), eval func(ast.Expr) uint64) {
	info := c.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := unwrapFun(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" {
				for _, a := range call.Args[1:] {
					sink(a.Pos(), eval(a),
						"wire-tainted value used to size make without validation", nil)
				}
			}
			return
		}
	}
	// Routing sinks: tainted SiteID destinations.
	var callee *types.Func
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fn].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fn.Sel].(*types.Func)
	}
	if callee != nil && routeFuncs[callee.Name()] {
		for _, a := range call.Args {
			if named := derefNamed(info.TypeOf(a)); named != nil &&
				named.Obj().Name() == "SiteID" {
				sink(a.Pos(), eval(a),
					"wire-tainted site id used as routing destination without validation", nil)
			}
		}
	}
	// Interprocedural: arguments flowing into callee parameter sinks.
	for _, t := range c.callees(call) {
		sum := c.w.summaries[t]
		if sum == nil {
			continue
		}
		for _, sk := range sum.sinks {
			if sk.param >= len(call.Args) {
				continue
			}
			chain := append([]string{t.name}, sk.chain...)
			sink(call.Pos(), eval(call.Args[sk.param]), sk.what, chain)
		}
	}
}

// callees resolves a call expression to its summarized targets through
// the engine's recorded call site (static, literal and expanded
// interface edges; dynamic calls stay unresolved).
func (c *fnCtx) callees(call *ast.CallExpr) []*funcSum {
	op := c.w.callops[c.s][call.Pos()]
	if op == nil || op.isGo {
		return nil
	}
	return op.callees
}
