package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// callgraph.go constructs the conservative static call graph the
// interprocedural engine propagates over. Construction rules:
//
//   - Direct calls to module functions and methods resolve through
//     go/types object identity (one edge).
//   - Calls through an interface method expand to the method on every
//     named type in the module whose value or pointer type implements
//     the interface — a superset of the runtime targets.
//   - `go f(...)` produces an edge marked as a goroutine launch: it is
//     part of the graph but excluded from lock-state propagation (the
//     new goroutine holds none of the creator's locks, and its blocking
//     does not block the creator).
//   - Function literals get their own node. A literal invoked on the
//     spot (`func(){...}()`, sync.Once.Do) is a synchronous edge that
//     inherits the creator's lock state; a literal stored in a variable
//     or field, or passed as a callback, is recorded as published and
//     analyzed as a root.
//   - Calls through function values (variables, fields, parameters) are
//     recorded as dynamic and left unresolved. Together with reflection
//     and cgo (neither used in this module) they are the engine's
//     documented soundness gap: a lock-order edge or blocking operation
//     reachable only through a stored function value is not seen.
//   - Calls to functions outside the module (stdlib) are leaves,
//     assumed non-blocking unless lockhold's blockingMethods table says
//     otherwise (time.Sleep, sync.WaitGroup.Wait, …).

// link resolves every recorded call site to funcSums. Interface calls
// are expanded against the module's concrete named types.
func (e *engine) link() {
	var concrete []*types.Named
	for _, pkg := range e.prog.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(n) {
				continue
			}
			concrete = append(concrete, n)
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		return concrete[i].Obj().Pkg().Path()+"."+concrete[i].Obj().Name() <
			concrete[j].Obj().Pkg().Path()+"."+concrete[j].Obj().Name()
	})
	for _, s := range e.sums {
		for i := range s.calls {
			c := &s.calls[i]
			switch {
			case c.lit != nil:
				if t := e.byLit[c.lit]; t != nil {
					c.callees = []*funcSum{t}
				}
			case c.staticFn != nil:
				if t := e.byObj[c.staticFn]; t != nil {
					c.callees = []*funcSum{t}
				}
			case c.ifaceFn != nil:
				c.callees = e.implementersOf(c.ifaceFn, concrete)
			}
		}
	}
}

// implementersOf returns the summaries of m's implementation on every
// module type satisfying m's interface.
func (e *engine) implementersOf(m *types.Func, concrete []*types.Named) []*funcSum {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*funcSum
	for _, n := range concrete {
		if !types.Implements(n, iface) && !types.Implements(types.NewPointer(n), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), false, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if t := e.byObj[fn]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// unwrapFun strips parentheses and generic instantiation from a call's
// Fun expression.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// displayName is the short human name used in findings and witness
// chains: "pkg.Func" or "pkg.Type.Method".
func displayName(fn *types.Func) string {
	if fn == nil {
		return "func"
	}
	prefix := ""
	if fn.Pkg() != nil {
		prefix = pkgBase(fn.Pkg().Path()) + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := derefNamed(sig.Recv().Type()); named != nil {
			return prefix + named.Obj().Name() + "." + fn.Name()
		}
	}
	return prefix + fn.Name()
}

// EdgeKind classifies a call-graph edge.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a declared function or method, or
	// the synchronous invocation of a function literal.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method; its targets
	// are the conservative expansion over module types.
	EdgeInterface
	// EdgeGo launches the callee in a new goroutine.
	EdgeGo
	// EdgeDynamic is a call through a function value, unresolved.
	EdgeDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeGo:
		return "go"
	case EdgeDynamic:
		return "dynamic"
	}
	return "unknown"
}

// CallNode is one function (declared or literal) in the call graph.
type CallNode struct {
	Name  string
	Pos   token.Pos
	Func  *types.Func // nil for function literals
	Edges []CallEdge
}

// CallEdge is one call site. Targets is empty for dynamic calls and for
// interface calls with no module implementation.
type CallEdge struct {
	Kind    EdgeKind
	Pos     token.Pos
	Targets []*CallNode
}

// CallGraph is the resolved conservative call graph of a Program.
type CallGraph struct {
	Nodes []*CallNode
}

// CallGraph builds (or reuses) the interprocedural engine and exposes
// its call graph.
func (p *Program) CallGraph() *CallGraph {
	e := p.engine()
	nodes := make(map[*funcSum]*CallNode, len(e.sums))
	g := &CallGraph{}
	for _, s := range e.sums {
		n := &CallNode{Name: s.name, Pos: s.pos, Func: s.obj}
		nodes[s] = n
		g.Nodes = append(g.Nodes, n)
	}
	for _, s := range e.sums {
		n := nodes[s]
		for i := range s.calls {
			c := &s.calls[i]
			kind := EdgeStatic
			switch {
			case c.dynamic:
				kind = EdgeDynamic
			case c.isGo:
				kind = EdgeGo
			case c.ifaceFn != nil:
				kind = EdgeInterface
			}
			edge := CallEdge{Kind: kind, Pos: c.pos}
			for _, t := range c.callees {
				edge.Targets = append(edge.Targets, nodes[t])
			}
			n.Edges = append(n.Edges, edge)
		}
	}
	return g
}
