package memory

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/testnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// TestDataflowConservationProperty drives random dataflow graphs across
// two sites and checks the machine's core invariant: every frame with
// all parameters delivered fires exactly once, regardless of which site
// each parameter came from or in which order they arrived.
func TestDataflowConservationProperty(t *testing.T) {
	_, mems, fires := memCluster(t, 2)
	a, b := mems[0], mems[1]

	// Each uint16 encodes one frame: low bits choose the arity (1..4),
	// the upper bits choose per-slot sender sites (bit i: a or b).
	round := 0
	f := func(jobs []uint16) bool {
		round++
		if len(jobs) > 12 {
			jobs = jobs[:12]
		}
		var ids []types.FrameID
		want := 0
		for _, j := range jobs {
			arity := int(j%4) + 1
			id := a.NewFrame(thread(uint32(round)), arity, types.PriorityNormal, 0)
			ids = append(ids, id)
			want++
			var wg sync.WaitGroup
			for slot := 0; slot < arity; slot++ {
				src := a
				if (j>>(2+slot))&1 == 1 {
					src = b
				}
				wg.Add(1)
				go func(src *Manager, slot int) {
					defer wg.Done()
					_ = src.Send(wire.Target{Addr: id, Slot: int32(slot)}, []byte{byte(slot)})
				}(src, slot)
			}
			wg.Wait()
		}
		// All frames must fire exactly once each.
		deadline := time.Now().Add(5 * time.Second)
		for countFired(fires[0], ids) < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		fired := map[types.FrameID]int{}
		fires[0].mu.Lock()
		for _, fr := range fires[0].frames {
			fired[fr.ID]++
		}
		fires[0].mu.Unlock()
		for _, id := range ids {
			if fired[id] != 1 {
				t.Logf("frame %v fired %d times", id, fired[id])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func countFired(c *fireCollector, ids []types.FrameID) int {
	want := map[types.FrameID]bool{}
	for _, id := range ids {
		want[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, fr := range c.frames {
		if want[fr.ID] {
			n++
		}
	}
	return n
}

// TestConcurrentReadWriteCoherence hammers one object from three sites
// with interleaved reads and writes; every read must observe *some*
// write's complete value (no torn or stale-forever data).
func TestConcurrentReadWriteCoherence(t *testing.T) {
	_, mems, _ := memCluster(t, 3)
	owner := mems[0]
	addr := owner.Alloc(prog(), []byte("val-000"))

	valid := sync.Map{}
	valid.Store("val-000", true)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers on two sites.
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := fmt.Sprintf("val-%d%02d", w+1, i)
				valid.Store(v, true)
				if err := mems[w+1].Write(addr, 0, []byte(v)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Readers on all three.
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got, err := mems[r].Read(addr)
				if err != nil {
					errs <- err
					return
				}
				if _, ok := valid.Load(string(got)); !ok {
					errs <- fmt.Errorf("torn/unknown read %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSingleFlightFetch verifies that concurrent first reads of one
// remote object produce a single remote fetch.
func TestSingleFlightFetch(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	owner, reader := mems[0], mems[1]
	addr := owner.Alloc(prog(), []byte("shared"))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reader.Read(addr); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := reader.Stats()
	if s.RemoteReads != 1 {
		t.Fatalf("RemoteReads = %d, want 1 (single flight)", s.RemoteReads)
	}
	if s.CacheHits != 7 {
		t.Fatalf("CacheHits = %d, want 7", s.CacheHits)
	}
	testnet.WaitFor(t, "noop", func() bool { return true })
}
