// Package memory implements the SDVM's attraction memory (paper §3.1, §4).
//
// The attraction memory is the COMA-inspired heart of the SDVM: it
// "contains the local part of the global memory" and "behaves like a
// COMA's attraction memory by attracting requested data to the local site
// transparently". Three kinds of state live in it:
//
//   - application memory objects, allocated with a global address whose
//     high part encodes the allocating site (the object's homesite);
//   - microframes, "a special kind of global data", stored and migrated
//     until they have received all their parameters;
//   - the homesite directory ([5]): every site tracks the current owner
//     of the objects it created, so a cache miss anywhere can be resolved
//     by asking the address's homesite, which answers or redirects.
//
// The central dataflow event also happens here: "every time a result of
// the computation of a microthread is applied to a waiting microframe,
// the attraction memory checks whether this was the last missing
// parameter. In this case the microframe has become executable and is
// given to the scheduling manager."
package memory

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
)

// maxRedirects bounds a read/write resolution chain. Ownership can move
// while we chase it, but never in a cycle longer than the cluster.
const maxRedirects = 16

// FireFunc receives a microframe that just became executable. The daemon
// wires this to the scheduling manager's Enqueue. It must not block.
type FireFunc func(f *wire.Microframe)

// Manager is one site's attraction memory.
type Manager struct {
	bus     *msgbus.Bus
	fire    FireFunc
	traffic func(prog types.ProgramID, bytes int)
	tr      *trace.Tracer

	mu        sync.Mutex
	nextLocal uint64

	// objects owned (resident) at this site, by address.
	objects map[types.GlobalAddr]*wire.MemObject
	// objOwner is the homesite directory for objects homed here:
	// address -> site currently owning it. Entries exist only while the
	// object lives elsewhere.
	objOwner map[types.GlobalAddr]types.SiteID

	// frames waiting (incomplete) at this site.
	frames map[types.FrameID]*wire.Microframe
	// frameOwner is the directory for frames homed here but currently
	// held elsewhere (after migration at sign-off or help replies of
	// incomplete frames).
	frameOwner map[types.FrameID]types.SiteID

	// remap overrides the homesite for addresses whose home left the
	// cluster; learned from broadcast HomeUpdates during sign-off.
	remap map[types.GlobalAddr]types.SiteID

	// readCache holds validated read copies of remote objects
	// (COMA read replication, paper §4: objects "migrate or even be
	// copied to other sites"). Coherence is write-invalidate: the owner
	// tracks a copyset per object and broadcasts MemInvalidate when the
	// object changes or migrates.
	readCache map[types.GlobalAddr][]byte
	// copies is the owner-side copyset: sites holding read copies of a
	// locally owned object.
	copies map[types.GlobalAddr]map[types.SiteID]bool
	// cacheEnabled allows the A-6 ablation to disable replication.
	cacheEnabled bool
	// fetching single-flights remote reads: concurrent readers of one
	// address share a single fetch instead of a thundering herd.
	fetching map[types.GlobalAddr]chan struct{}

	// consumed records frames that already fired, distinguishing the
	// programming error "parameter for a consumed frame" from routing
	// races worth retrying.
	consumed map[types.FrameID]bool

	// pendingRetries caps re-queues of parameters whose target frame is
	// in flight, so a parameter for a frame that never materializes is
	// eventually dropped instead of looping forever.
	pendingRetries map[wire.Target]int

	// Sender-side logs for crash recovery ([4]): paramLog keeps every
	// parameter sent to a remote frame, grantLog every frame handed to
	// a peer (help replies, pushes). When a peer is declared crashed,
	// Replay resends/re-injects them; duplicate applications are
	// rejected by the Filled/consumed guards, and deterministic
	// microthreads make re-execution converge on the same results.
	paramLog map[types.ProgramID][]loggedParam
	grantLog map[types.SiteID][]*wire.Microframe

	stats Stats

	// met holds the metrics instruments. The zero value (all nil
	// pointers) is fully inert, so no hot path needs an enabled check.
	// Written once by SetMetrics at daemon construction.
	met memMetrics

	// done unblocks retry pauses when the daemon shuts down, so a
	// SendFor or fetch backoff never outlives the site.
	done      chan struct{}
	closeOnce sync.Once

	rngMu sync.Mutex
	// rng jitters retry backoff so sites that miss the same owner at
	// the same moment don't re-collide every round. Seeded per site by
	// the daemon (SetSeed) to keep chaos runs reproducible. guarded by rngMu
	rng *rand.Rand
}

// retryPolicy paces parameter-send and fetch retries: directory updates
// propagate in a few ms, so start just above that and cap well below the
// crash-detection timescale. Jitter desynchronises competing fetchers.
var retryPolicy = backoff.Policy{
	Min:    5 * time.Millisecond,
	Max:    100 * time.Millisecond,
	Jitter: 0.5,
}

// memMetrics bundles the attraction memory's instruments; every field is
// nil-safe, so the zero value disables collection.
type memMetrics struct {
	localReads     *metrics.Counter
	remoteReads    *metrics.Counter
	cacheHits      *metrics.Counter
	localWrites    *metrics.Counter
	remoteWrites   *metrics.Counter
	paramsApplied  *metrics.Counter
	framesFired    *metrics.Counter
	migrations     *metrics.Counter
	fetchRetries   *metrics.Counter
	invalidates    *metrics.Counter
	invalidateAcks *metrics.Counter
	invalidateRTT  *metrics.Histogram
}

// SetMetrics installs the instruments. Called once at daemon construction;
// a nil registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = memMetrics{
		localReads:     reg.Counter("mem.local_reads"),
		remoteReads:    reg.Counter("mem.remote_reads"),
		cacheHits:      reg.Counter("mem.cache_hits"),
		localWrites:    reg.Counter("mem.local_writes"),
		remoteWrites:   reg.Counter("mem.remote_writes"),
		paramsApplied:  reg.Counter("mem.params_applied"),
		framesFired:    reg.Counter("mem.frames_fired"),
		migrations:     reg.Counter("mem.migrations"),
		fetchRetries:   reg.Counter("mem.fetch_retries"),
		invalidates:    reg.Counter("mem.invalidates"),
		invalidateAcks: reg.Counter("mem.invalidate_acks"),
		invalidateRTT:  reg.Histogram("mem.invalidate_rtt", nil),
	}
	reg.GaugeFunc("mem.objects", func() int64 { return int64(m.ObjectCount()) })
	reg.GaugeFunc("mem.frames_waiting", func() int64 { return int64(m.FrameCount()) })
}

// loggedParam is one replayable remote parameter application.
type loggedParam struct {
	target wire.Target
	data   []byte
}

// Stats counts attraction-memory activity for the site manager.
type Stats struct {
	Allocs         uint64
	LocalReads     uint64
	RemoteReads    uint64
	LocalWrites    uint64
	RemoteWrites   uint64
	ParamsApplied  uint64
	FramesFired    uint64
	Migrations     uint64
	CacheHits      uint64 // reads served from a local replica
	Invalidates    uint64 // replicas dropped after a remote write
	InvalidateAcks uint64 // invalidation round-trips confirmed by a Barrier reply
}

// New returns an attraction memory bound to bus, delivering executable
// frames through fire. It registers itself for MgrMemory.
func New(bus *msgbus.Bus, fire FireFunc) *Manager {
	m := &Manager{
		bus:            bus,
		fire:           fire,
		objects:        make(map[types.GlobalAddr]*wire.MemObject),
		objOwner:       make(map[types.GlobalAddr]types.SiteID),
		frames:         make(map[types.FrameID]*wire.Microframe),
		frameOwner:     make(map[types.FrameID]types.SiteID),
		remap:          make(map[types.GlobalAddr]types.SiteID),
		consumed:       make(map[types.FrameID]bool),
		pendingRetries: make(map[wire.Target]int),
		paramLog:       make(map[types.ProgramID][]loggedParam),
		grantLog:       make(map[types.SiteID][]*wire.Microframe),
		readCache:      make(map[types.GlobalAddr][]byte),
		copies:         make(map[types.GlobalAddr]map[types.SiteID]bool),
		cacheEnabled:   true,
		fetching:       make(map[types.GlobalAddr]chan struct{}),
		done:           make(chan struct{}),
		rng:            rand.New(rand.NewSource(1)),
	}
	m.traffic = func(types.ProgramID, int) {}
	bus.Register(types.MgrMemory, m)
	return m
}

// SetTracer installs the event tracer (nil = off).
func (m *Manager) SetTracer(t *trace.Tracer) { m.tr = t }

// SetSeed reseeds the retry-jitter RNG. The daemon calls it once at
// construction with a per-site seed so chaos runs are reproducible.
func (m *Manager) SetSeed(seed int64) {
	m.rngMu.Lock()
	m.rng = rand.New(rand.NewSource(seed))
	m.rngMu.Unlock()
}

// retryDelay computes the jittered backoff for the given retry attempt.
func (m *Manager) retryDelay(attempt int) time.Duration {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return retryPolicy.Delay(attempt, m.rng)
}

// Close interrupts every in-flight retry pause. Idempotent; called by
// the daemon on SignOff and Kill.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.done) })
}

// pause sleeps for d unless the manager is closed first; it reports
// whether the caller should keep retrying.
func (m *Manager) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.done:
		return false
	case <-t.C:
		return true
	}
}

// SetReadReplication toggles COMA read replication (default on); the
// A-6 ablation measures its effect.
func (m *Manager) SetReadReplication(enabled bool) {
	m.mu.Lock()
	m.cacheEnabled = enabled
	if !enabled {
		m.readCache = make(map[types.GlobalAddr][]byte)
	}
	m.mu.Unlock()
}

// SetTrafficHook installs the accounting manager's meter for parameter
// data produced on behalf of a program.
func (m *Manager) SetTrafficHook(f func(prog types.ProgramID, bytes int)) {
	if f != nil {
		m.traffic = f
	}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// newAddr issues a fresh global address homed at this site.
func (m *Manager) newAddr() types.GlobalAddr {
	m.nextLocal++
	return types.GlobalAddr{Home: m.bus.Self(), Local: m.nextLocal}
}

// ---------------------------------------------------------------------------
// Local API: called by the execution layer (may block on remote traffic).

// Alloc creates a memory object of the given contents for program prog,
// homed and initially owned at this site, and returns its global address
// — "it will receive a global memory address ... and is thus accessible
// from all sites in the cluster" (paper §4).
func (m *Manager) Alloc(prog types.ProgramID, data []byte) types.GlobalAddr {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr := m.newAddr()
	m.objects[addr] = &wire.MemObject{
		Addr:    addr,
		Program: prog,
		Data:    append([]byte(nil), data...),
	}
	m.stats.Allocs++
	return addr
}

// NewFrame allocates a microframe homed at this site. A zero-arity frame
// is executable immediately and goes straight to the scheduler; any other
// frame waits in the attraction memory for its parameters.
func (m *Manager) NewFrame(thread types.ThreadID, arity int, prio types.Priority, hint uint32, targets ...wire.Target) types.FrameID {
	m.mu.Lock()
	id := m.newAddr()
	f := wire.NewMicroframe(id, thread, arity, targets...)
	f.Prio = prio
	f.Hint = hint
	if arity == 0 {
		m.consumed[id] = true
		m.stats.FramesFired++
		m.met.framesFired.Inc()
		m.mu.Unlock()
		m.tr.Record(trace.EvFrameCreated, id, thread, "zero arity")
		m.tr.Record(trace.EvFrameFired, id, thread, "")
		m.fire(f)
		return id
	}
	m.frames[id] = f
	m.mu.Unlock()
	m.tr.Record(trace.EvFrameCreated, id, thread, fmt.Sprintf("arity %d", arity))
	return id
}

// AdoptFrame registers a frame that migrated here (help reply of a
// waiting frame, sign-off relocation, checkpoint recovery). The frame's
// homesite is informed so future parameters find it.
func (m *Manager) AdoptFrame(f *wire.Microframe) {
	m.mu.Lock()
	if m.consumed[f.ID] {
		m.mu.Unlock()
		return
	}
	if f.Executable() {
		m.consumed[f.ID] = true
		m.stats.FramesFired++
		m.met.framesFired.Inc()
		m.mu.Unlock()
		m.fire(f)
		return
	}
	m.frames[f.ID] = f
	self := m.bus.Self()
	m.mu.Unlock()
	m.tr.Record(trace.EvReceived, f.ID, f.Thread, "incomplete frame adopted")

	if f.ID.Home != self {
		_ = m.bus.Send(f.ID.Home, types.MgrMemory, types.MgrMemory,
			&wire.HomeUpdate{Addr: f.ID, Owner: self})
	}
}

// Send applies one result datum to a parameter slot of a target frame,
// locally or across the cluster — the SDVM's fundamental dataflow step
// (paper §3.2, action 4). It retries transient routing failures: frames
// migrate, sites leave, directories lag.
func (m *Manager) Send(target wire.Target, data []byte) error {
	return m.SendFor(0, target, data)
}

// SendFor is Send with the owning program recorded in the crash-recovery
// log (prog 0 skips logging; used for bootstrap-internal sends).
func (m *Manager) SendFor(prog types.ProgramID, target wire.Target, data []byte) error {
	if prog != 0 {
		m.traffic(prog, len(data))
		m.mu.Lock()
		m.paramLog[prog] = append(m.paramLog[prog], loggedParam{target, append([]byte(nil), data...)})
		m.mu.Unlock()
	}
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		done, err := m.trySend(target, data)
		if done {
			return err
		}
		lastErr = err
		m.met.fetchRetries.Inc()
		if !m.pause(m.retryDelay(attempt)) {
			break // shutting down: the send can never succeed now
		}
	}
	return fmt.Errorf("memory: apply %v: %w", target, lastErr)
}

// RecordGrant logs a frame handed to a peer, for re-injection if that
// peer crashes before the frame's results are observed.
func (m *Manager) RecordGrant(grantee types.SiteID, f *wire.Microframe) {
	m.mu.Lock()
	m.grantLog[grantee] = append(m.grantLog[grantee], f.Clone())
	m.mu.Unlock()
}

// OnSiteCrashed replays this site's logs after dead was declared
// crashed: frames granted to the dead site re-enter the dataflow here,
// and every logged parameter of still-running programs is resent (stale
// copies are dropped at the receivers).
func (m *Manager) OnSiteCrashed(dead types.SiteID, running func(types.ProgramID) bool) {
	m.mu.Lock()
	granted := m.grantLog[dead]
	delete(m.grantLog, dead)
	var params []loggedParam
	for prog, entries := range m.paramLog {
		if running == nil || running(prog) {
			params = append(params, entries...)
		}
	}
	m.mu.Unlock()

	for _, f := range granted {
		if running == nil || running(f.Thread.Program) {
			m.AdoptFrame(f.Clone())
		}
	}
	for _, p := range params {
		// Ignore errors: most replays hit already-filled slots.
		_ = m.Send(p.target, p.data)
	}
}

// trySend attempts one delivery. done=false means "retry may help".
func (m *Manager) trySend(target wire.Target, data []byte) (done bool, err error) {
	m.mu.Lock()
	if f, ok := m.frames[target.Addr]; ok {
		err := m.applyLocked(f, int(target.Slot), data)
		m.mu.Unlock()
		return true, err
	}
	if m.consumed[target.Addr] {
		m.mu.Unlock()
		return true, &types.AddrError{Err: types.ErrNoSuchFrame, Addr: target.Addr}
	}
	dst := m.routeFrameLocked(target.Addr)
	m.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		// Nobody known to hold it (yet): relocation in flight.
		return false, &types.AddrError{Err: types.ErrNoSuchFrame, Addr: target.Addr}
	}
	sendErr := m.bus.Send(dst, types.MgrMemory, types.MgrMemory,
		&wire.ApplyParam{Dst: target, Data: data})
	if sendErr != nil {
		return false, sendErr
	}
	return true, nil
}

// applyLocked fills a slot of a locally held frame, firing it if
// complete. Caller holds m.mu; the fire callback runs without the lock.
func (m *Manager) applyLocked(f *wire.Microframe, slot int, data []byte) error {
	fires, err := f.Apply(slot, data)
	if err != nil {
		return err
	}
	m.stats.ParamsApplied++
	m.met.paramsApplied.Inc()
	if !fires {
		m.tr.Record(trace.EvParamApplied, f.ID, f.Thread, fmt.Sprintf("slot %d, %d missing", slot, f.Missing()))
		return nil
	}
	delete(m.frames, f.ID)
	m.consumed[f.ID] = true
	m.stats.FramesFired++
	m.met.framesFired.Inc()
	fire := m.fire
	m.mu.Unlock()
	m.tr.Record(trace.EvFrameFired, f.ID, f.Thread, fmt.Sprintf("last slot %d", slot))
	fire(f)
	m.mu.Lock()
	return nil
}

// routeFrameLocked decides where a parameter for a non-resident frame
// should go. Caller holds m.mu.
func (m *Manager) routeFrameLocked(id types.FrameID) types.SiteID {
	if owner, ok := m.frameOwner[id]; ok {
		return owner
	}
	if owner, ok := m.remap[id]; ok {
		return owner
	}
	if id.Home != m.bus.Self() {
		return id.Home
	}
	return types.InvalidSite
}

// Read returns a copy of the object's current contents, fetching it from
// its owner if it is not resident ("when they are needed, they migrate to
// the corresponding site" — reads take a copy, write intent migrates).
func (m *Manager) Read(addr types.GlobalAddr) ([]byte, error) {
	for {
		m.mu.Lock()
		if o, ok := m.objects[addr]; ok {
			m.stats.LocalReads++
			m.met.localReads.Inc()
			data := append([]byte(nil), o.Data...)
			m.mu.Unlock()
			return data, nil
		}
		if data, ok := m.readCache[addr]; ok {
			m.stats.CacheHits++
			m.met.cacheHits.Inc()
			out := append([]byte(nil), data...)
			m.mu.Unlock()
			return out, nil
		}
		if wait, inflight := m.fetching[addr]; inflight && m.cacheEnabled {
			// Another microthread is already fetching this object;
			// share its result instead of stampeding the owner.
			m.mu.Unlock()
			<-wait
			continue
		}
		done := make(chan struct{})
		m.fetching[addr] = done
		m.stats.RemoteReads++
		m.met.remoteReads.Inc()
		m.mu.Unlock()

		o, err := m.fetch(addr, false)
		m.mu.Lock()
		if err == nil && m.cacheEnabled {
			m.readCache[addr] = append([]byte(nil), o.Data...)
		}
		delete(m.fetching, addr)
		close(done)
		m.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return o.Data, nil
	}
}

// Attract migrates the object to this site (ownership transfer) and
// returns a copy of its contents — COMA attraction on write intent.
func (m *Manager) Attract(addr types.GlobalAddr) ([]byte, error) {
	m.mu.Lock()
	if o, ok := m.objects[addr]; ok {
		data := append([]byte(nil), o.Data...)
		m.mu.Unlock()
		return data, nil
	}
	m.mu.Unlock()

	o, err := m.fetch(addr, true)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	m.objects[addr] = o
	m.stats.Migrations++
	m.met.migrations.Inc()
	self := m.bus.Self()
	m.mu.Unlock()

	// Keep the homesite directory current.
	if addr.Home != self {
		_ = m.bus.Send(addr.Home, types.MgrMemory, types.MgrMemory,
			&wire.HomeUpdate{Addr: addr, Owner: self})
	}
	return append([]byte(nil), o.Data...), nil
}

// fetch resolves addr through the homesite directory and retrieves the
// object, following redirects. Ownership can move mid-chase (directory
// updates are asynchronous), so an exhausted redirect chain is retried
// after a short pause rather than failed outright.
func (m *Manager) fetch(addr types.GlobalAddr, migrate bool) (*wire.MemObject, error) {
	var lastErr error
	for round := 0; round < 5; round++ {
		o, retry, err := m.fetchOnce(addr, migrate)
		if err == nil {
			return o, nil
		}
		if !retry {
			return nil, err
		}
		lastErr = err
		m.met.fetchRetries.Inc()
		if !m.pause(m.retryDelay(round)) {
			break // shutting down: stop chasing the directory
		}
	}
	return nil, lastErr
}

// fetchOnce runs one redirect chase. retry reports whether the failure
// is plausibly transient (in-flight migration).
func (m *Manager) fetchOnce(addr types.GlobalAddr, migrate bool) (obj *wire.MemObject, retry bool, err error) {
	m.mu.Lock()
	dst := m.routeObjectLocked(addr)
	m.mu.Unlock()
	if dst == types.InvalidSite {
		return nil, false, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
	}

	for hop := 0; hop < maxRedirects; hop++ {
		reply, err := m.bus.Request(dst, types.MgrMemory, types.MgrMemory,
			&wire.MemRead{Addr: addr, Migrate: migrate}, 0)
		if err != nil {
			return nil, true, err
		}
		rr, ok := reply.Payload.(*wire.MemReadReply)
		if !ok {
			return nil, false, fmt.Errorf("%w: mem read reply %T", types.ErrBadMessage, reply.Payload)
		}
		switch {
		case rr.Found && rr.Redirect == types.InvalidSite:
			o := rr.Object
			return &o, false, nil
		case rr.Redirect != types.InvalidSite && rr.Redirect != dst:
			dst = rr.Redirect
		default:
			return nil, true, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
		}
	}
	return nil, true, fmt.Errorf("memory: read %v: redirect chain too long", addr)
}

// takeCopysetLocked removes and returns the copyset of addr, excluding
// skip (the site whose action triggered the invalidation — it holds the
// fresh version). Caller holds m.mu.
func (m *Manager) takeCopysetLocked(addr types.GlobalAddr, skip types.SiteID) []types.SiteID {
	cs, ok := m.copies[addr]
	if !ok {
		return nil
	}
	delete(m.copies, addr)
	out := make([]types.SiteID, 0, len(cs))
	for id := range cs {
		if id != skip {
			out = append(out, id)
		}
	}
	return out
}

// sendInvalidates drops replica holders' copies of addr and waits for
// their acknowledgements (bounded), so a writer that has been acked can
// rely on no stale replica surviving anywhere.
func (m *Manager) sendInvalidates(addr types.GlobalAddr, sites []types.SiteID) {
	if len(sites) == 0 {
		return
	}
	var wg sync.WaitGroup
	var acked atomic.Uint64
	for _, id := range sites {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			reply, err := m.bus.Request(id, types.MgrMemory, types.MgrMemory,
				&wire.MemInvalidate{Addr: addr}, 500*time.Millisecond)
			if err != nil {
				return // bounded wait: a dead replica holder cannot ack
			}
			if _, ok := reply.Payload.(*wire.Barrier); ok {
				acked.Add(1)
				m.met.invalidateRTT.Observe(time.Since(start))
			}
		}()
	}
	wg.Wait()
	m.mu.Lock()
	m.stats.InvalidateAcks += acked.Load()
	m.met.invalidateAcks.Add(acked.Load())
	m.mu.Unlock()
}

// routeObjectLocked picks the first site to ask about addr. Caller holds
// m.mu.
func (m *Manager) routeObjectLocked(addr types.GlobalAddr) types.SiteID {
	if owner, ok := m.objOwner[addr]; ok {
		return owner
	}
	if owner, ok := m.remap[addr]; ok {
		return owner
	}
	if addr.Home != m.bus.Self() {
		return addr.Home
	}
	return types.InvalidSite
}

// Write stores data at offset within the object, extending it if needed.
// Non-resident objects are written in place at their owner.
func (m *Manager) Write(addr types.GlobalAddr, offset int, data []byte) error {
	m.mu.Lock()
	if o, ok := m.objects[addr]; ok {
		writeAt(o, offset, data)
		m.stats.LocalWrites++
		m.met.localWrites.Inc()
		invalidate := m.takeCopysetLocked(addr, types.InvalidSite)
		m.mu.Unlock()
		m.sendInvalidates(addr, invalidate)
		return nil
	}
	// A stale local replica must not survive our own write-through.
	delete(m.readCache, addr)
	m.stats.RemoteWrites++
	m.met.remoteWrites.Inc()
	dst := m.routeObjectLocked(addr)
	m.mu.Unlock()
	if dst == types.InvalidSite {
		return &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
	}

	for hop := 0; hop < maxRedirects; hop++ {
		reply, err := m.bus.Request(dst, types.MgrMemory, types.MgrMemory,
			&wire.MemWrite{Addr: addr, Offset: uint32(offset), Data: data}, 0)
		if err != nil {
			return err
		}
		ack, ok := reply.Payload.(*wire.MemWriteAck)
		if !ok {
			return fmt.Errorf("%w: mem write reply %T", types.ErrBadMessage, reply.Payload)
		}
		if ack.OK {
			return nil
		}
		if ack.Redirect == types.InvalidSite || ack.Redirect == dst {
			return &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
		}
		dst = ack.Redirect
	}
	return fmt.Errorf("memory: write %v: redirect chain too long", addr)
}

func writeAt(o *wire.MemObject, offset int, data []byte) {
	if need := offset + len(data); need > len(o.Data) {
		grown := make([]byte, need)
		copy(grown, o.Data)
		o.Data = grown
	}
	copy(o.Data[offset:], data)
	o.Version++
}

// ---------------------------------------------------------------------------
// Relocation, checkpointing, GC.

// EvacuateTo hands every resident frame and object to successor — the
// sign-off protocol's data phase (paper §3.4: "all microframes and the
// local part of the global memory have to be relocated to other sites
// before shutdown"). Peers are told the new owner so the directories
// stay coherent even though this site is about to vanish.
func (m *Manager) EvacuateTo(successor types.SiteID) error {
	m.mu.Lock()
	frames := make([]*wire.Microframe, 0, len(m.frames))
	for _, f := range m.frames {
		frames = append(frames, f.Clone())
	}
	objects := make([]wire.MemObject, 0, len(m.objects))
	for _, o := range m.objects {
		objects = append(objects, *o.Clone())
	}
	m.frames = make(map[types.FrameID]*wire.Microframe)
	m.objects = make(map[types.GlobalAddr]*wire.MemObject)
	m.mu.Unlock()

	// Tell everyone where the addresses homed or owned here now live,
	// before moving the data, so in-flight traffic re-routes.
	var updates []*wire.HomeUpdate
	for _, f := range frames {
		updates = append(updates, &wire.HomeUpdate{Addr: f.ID, Owner: successor})
	}
	for i := range objects {
		updates = append(updates, &wire.HomeUpdate{Addr: objects[i].Addr, Owner: successor})
	}
	m.mu.Lock()
	for addr, owner := range m.objOwner {
		updates = append(updates, &wire.HomeUpdate{Addr: addr, Owner: owner})
	}
	for id, owner := range m.frameOwner {
		updates = append(updates, &wire.HomeUpdate{Addr: id, Owner: owner})
	}
	m.mu.Unlock()
	for _, u := range updates {
		_ = m.bus.Send(types.Broadcast, types.MgrMemory, types.MgrMemory, u)
	}

	if len(objects) > 0 {
		if err := m.bus.Send(successor, types.MgrMemory, types.MgrMemory,
			&wire.MemMigrate{Objects: objects}); err != nil {
			return fmt.Errorf("memory: evacuate objects: %w", err)
		}
	}
	if len(frames) > 0 {
		if err := m.bus.Send(successor, types.MgrMemory, types.MgrMemory,
			&wire.FrameRelocate{Frames: frames}); err != nil {
			return fmt.Errorf("memory: evacuate frames: %w", err)
		}
	}
	return nil
}

// Snapshot returns deep copies of all resident frames and objects of one
// program, for checkpointing.
func (m *Manager) Snapshot(prog types.ProgramID) (frames []*wire.Microframe, objects []wire.MemObject) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.frames {
		if f.Thread.Program == prog {
			frames = append(frames, f.Clone())
		}
	}
	for _, o := range m.objects {
		if o.Program == prog {
			objects = append(objects, *o.Clone())
		}
	}
	return frames, objects
}

// Restore adopts checkpointed state (crash recovery): frames re-enter
// the dataflow, objects become resident here. Ownership updates are
// broadcast — the restored addresses' homesite is typically the dead
// site, so a directed directory update would go nowhere.
func (m *Manager) Restore(frames []*wire.Microframe, objects []wire.MemObject) {
	m.mu.Lock()
	for i := range objects {
		o := objects[i]
		m.objects[o.Addr] = &o
	}
	self := m.bus.Self()
	m.mu.Unlock()

	for i := range objects {
		if objects[i].Addr.Home != self {
			_ = m.bus.Send(types.Broadcast, types.MgrMemory, types.MgrMemory,
				&wire.HomeUpdate{Addr: objects[i].Addr, Owner: self})
		}
	}
	for _, f := range frames {
		m.AdoptFrame(f.Clone())
		if f.ID.Home != self {
			_ = m.bus.Send(types.Broadcast, types.MgrMemory, types.MgrMemory,
				&wire.HomeUpdate{Addr: f.ID, Owner: self})
		}
	}
}

// DropProgram discards all state of a terminated program ("a flag that
// the program has terminated and thus its microthreads can safely be
// deleted from memory", paper §4).
func (m *Manager) DropProgram(prog types.ProgramID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, f := range m.frames {
		if f.Thread.Program == prog {
			delete(m.frames, id)
		}
	}
	for addr, o := range m.objects {
		if o.Program == prog {
			delete(m.objects, addr)
			delete(m.objOwner, addr)
		}
	}
	// Replicas are not program-tagged; drop them all (cheap, and a
	// terminated program's addresses never resolve again anyway).
	m.readCache = make(map[types.GlobalAddr][]byte)
	delete(m.paramLog, prog)
	for grantee, frames := range m.grantLog {
		kept := frames[:0]
		for _, f := range frames {
			if f.Thread.Program != prog {
				kept = append(kept, f)
			}
		}
		m.grantLog[grantee] = kept
	}
}

// FrameCount returns the number of waiting frames (site statistics).
func (m *Manager) FrameCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.frames)
}

// ObjectCount returns the number of resident objects.
func (m *Manager) ObjectCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objects)
}

// TakeFrame removes and returns a specific waiting frame (used when a
// help reply hands a waiting frame away — rare, but the scheduler may
// relocate incomplete frames during load balancing).
func (m *Manager) TakeFrame(id types.FrameID) (*wire.Microframe, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.frames[id]
	if ok {
		delete(m.frames, id)
	}
	return f, ok
}

// ---------------------------------------------------------------------------
// Message handling (msgbus dispatcher; must not block).

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.ApplyParam:
		m.handleApplyParam(p)
	case *wire.MemRead:
		m.handleMemRead(msg, p)
	case *wire.MemWrite:
		m.handleMemWrite(msg, p)
	case *wire.MemMigrate:
		m.handleMigrate(p)
	case *wire.MemInvalidate:
		m.mu.Lock()
		if _, ok := m.readCache[p.Addr]; ok {
			delete(m.readCache, p.Addr)
			m.stats.Invalidates++
			m.met.invalidates.Inc()
		}
		m.mu.Unlock()
		_ = m.bus.Reply(msg, types.MgrMemory, &wire.Barrier{})
	case *wire.HomeUpdate:
		m.handleHomeUpdate(msg.Src, p)
	case *wire.FrameRelocate:
		for _, f := range p.Frames {
			m.AdoptFrame(f)
		}
	}
}

func (m *Manager) handleApplyParam(p *wire.ApplyParam) {
	m.mu.Lock()
	if f, ok := m.frames[p.Dst.Addr]; ok {
		// Errors here are dataflow programming errors (double-filled
		// slot); they are counted but cannot be reported to the remote
		// sender meaningfully.
		_ = m.applyLocked(f, int(p.Dst.Slot), p.Data)
		m.mu.Unlock()
		return
	}
	if m.consumed[p.Dst.Addr] {
		m.mu.Unlock()
		return
	}
	dst := m.routeFrameLocked(p.Dst.Addr)
	m.mu.Unlock()

	if dst != types.InvalidSite && dst != m.bus.Self() {
		if err := m.bus.Send(dst, types.MgrMemory, types.MgrMemory, p); err == nil {
			return
		}
		// The forward target just left or crashed; fall through to the
		// retry path — routing will heal once relocation broadcasts or
		// crash recovery update the directories.
	}
	// Frame not here and not (reachably) known elsewhere: likely
	// in-flight. Retry shortly rather than dropping the parameter, but
	// give up after ~5s so dead programs cannot loop forever.
	m.mu.Lock()
	m.pendingRetries[p.Dst]++
	tries := m.pendingRetries[p.Dst]
	m.mu.Unlock()
	if tries > 100 {
		m.mu.Lock()
		delete(m.pendingRetries, p.Dst)
		m.mu.Unlock()
		return
	}
	dup := &wire.ApplyParam{Dst: p.Dst, Data: p.Data}
	time.AfterFunc(50*time.Millisecond, func() {
		_ = m.bus.Send(m.bus.Self(), types.MgrMemory, types.MgrMemory, dup)
	})
}

func (m *Manager) handleMemRead(msg *wire.Message, p *wire.MemRead) {
	m.mu.Lock()
	if o, ok := m.objects[p.Addr]; ok {
		reply := &wire.MemReadReply{Found: true, Object: *o.Clone()}
		var invalidate []types.SiteID
		if p.Migrate {
			delete(m.objects, p.Addr)
			if p.Addr.Home == m.bus.Self() {
				m.objOwner[p.Addr] = msg.Src
			} else {
				// Transit hint: until the homesite directory catches
				// up, requests that still arrive here are forwarded to
				// the new owner instead of bouncing via the home.
				m.remap[p.Addr] = msg.Src
			}
			m.stats.Migrations++
			m.met.migrations.Inc()
			// Ownership moves: replicas keyed to this owner's copyset
			// are dropped (the new owner starts a fresh copyset).
			invalidate = m.takeCopysetLocked(p.Addr, msg.Src)
		} else {
			m.stats.LocalReads++
			if m.cacheEnabled && msg.Src.Valid() && msg.Src != m.bus.Self() {
				cs, ok := m.copies[p.Addr]
				if !ok {
					cs = make(map[types.SiteID]bool)
					m.copies[p.Addr] = cs
				}
				cs[msg.Src] = true
			}
		}
		m.mu.Unlock()
		m.sendInvalidates(p.Addr, invalidate)
		_ = m.bus.Reply(msg, types.MgrMemory, reply)
		return
	}
	dst := m.routeObjectLocked(p.Addr)
	m.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		_ = m.bus.ReplyErr(msg, types.MgrMemory, wire.ErrCodeNoSuchObject, p.Addr.String())
		return
	}
	_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemReadReply{Found: true, Redirect: dst})
}

func (m *Manager) handleMemWrite(msg *wire.Message, p *wire.MemWrite) {
	m.mu.Lock()
	if o, ok := m.objects[p.Addr]; ok {
		writeAt(o, int(p.Offset), p.Data)
		m.stats.LocalWrites++
		m.met.localWrites.Inc()
		invalidate := m.takeCopysetLocked(p.Addr, msg.Src)
		m.mu.Unlock()
		if len(invalidate) == 0 {
			_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemWriteAck{OK: true})
			return
		}
		// Collect invalidation acks off the dispatcher, then ack the
		// writer: once the writer proceeds, no stale replica survives.
		go func() {
			m.sendInvalidates(p.Addr, invalidate)
			_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemWriteAck{OK: true})
		}()
		return
	}
	dst := m.routeObjectLocked(p.Addr)
	m.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		_ = m.bus.ReplyErr(msg, types.MgrMemory, wire.ErrCodeNoSuchObject, p.Addr.String())
		return
	}
	_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemWriteAck{OK: false, Redirect: dst})
}

func (m *Manager) handleMigrate(p *wire.MemMigrate) {
	m.mu.Lock()
	self := m.bus.Self()
	var updates []*wire.HomeUpdate
	for i := range p.Objects {
		o := p.Objects[i]
		m.objects[o.Addr] = &o
		if o.Addr.Home == self {
			delete(m.objOwner, o.Addr) // we own it again
		} else {
			updates = append(updates, &wire.HomeUpdate{Addr: o.Addr, Owner: self})
		}
	}
	m.stats.Migrations += uint64(len(p.Objects))
	m.met.migrations.Add(uint64(len(p.Objects)))
	m.mu.Unlock()

	for _, u := range updates {
		_ = m.bus.Send(u.Addr.Home, types.MgrMemory, types.MgrMemory, u)
	}
}

func (m *Manager) handleHomeUpdate(from types.SiteID, p *wire.HomeUpdate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	self := m.bus.Self()
	if p.Addr.Home == self {
		// Directory update for an address we created.
		if p.Owner == self {
			delete(m.objOwner, p.Addr)
			delete(m.frameOwner, p.Addr)
			return
		}
		if m.consumed[p.Addr] {
			return
		}
		// The address may name a frame or an object; record in both
		// directories (lookups check residency first, so a stale entry
		// in the wrong directory is harmless).
		if _, resident := m.objects[p.Addr]; !resident {
			if _, fresident := m.frames[p.Addr]; !fresident {
				m.objOwner[p.Addr] = p.Owner
				m.frameOwner[p.Addr] = p.Owner
			}
		}
		return
	}
	// Broadcast remap from an evacuating site.
	if _, resident := m.objects[p.Addr]; resident {
		return
	}
	if _, resident := m.frames[p.Addr]; resident {
		return
	}
	if p.Owner == self {
		return
	}
	m.remap[p.Addr] = p.Owner
}
