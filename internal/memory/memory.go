// Package memory implements the SDVM's attraction memory (paper §3.1, §4).
//
// The attraction memory is the COMA-inspired heart of the SDVM: it
// "contains the local part of the global memory" and "behaves like a
// COMA's attraction memory by attracting requested data to the local site
// transparently". Three kinds of state live in it:
//
//   - application memory objects, allocated with a global address whose
//     high part encodes the allocating site (the object's homesite);
//   - microframes, "a special kind of global data", stored and migrated
//     until they have received all their parameters;
//   - the homesite directory ([5]): every site tracks the current owner
//     of the objects it created, so a cache miss anywhere can be resolved
//     by asking the address's homesite, which answers or redirects.
//
// The central dataflow event also happens here: "every time a result of
// the computation of a microthread is applied to a waiting microframe,
// the attraction memory checks whether this was the last missing
// parameter. In this case the microframe has become executable and is
// given to the scheduling manager."
//
// All address-keyed state is sharded: each global address hashes to one
// of shardCount shards with its own mutex, so local reads, writes and
// parameter applications on distinct addresses proceed in parallel
// across cores instead of serializing on one manager-wide lock.
package memory

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
)

// maxRedirects bounds a read/write resolution chain. Ownership can move
// while we chase it, but never in a cycle longer than the cluster.
const maxRedirects = 16

// shardBits selects the shard count. 16 shards keep the per-shard
// collision probability low at typical core counts while the fixed
// array stays small enough to embed in the Manager.
const (
	shardBits  = 4
	shardCount = 1 << shardBits
)

// FireFunc receives a microframe that just became executable. The daemon
// wires this to the scheduling manager's Enqueue. It must not block.
type FireFunc func(f *wire.Microframe)

// memShard holds every piece of address-keyed state for one slice of
// the address space. FrameID aliases GlobalAddr, so all maps concerning
// one address land in the same shard and one lock covers its state
// transitions (frame waiting → consumed, object resident → remote, …).
type memShard struct {
	mu sync.Mutex

	// objects owned (resident) at this site, by address. guarded by mu
	objects map[types.GlobalAddr]*wire.MemObject
	// objOwner is the homesite directory for objects homed here:
	// address -> site currently owning it. Entries exist only while the
	// object lives elsewhere. guarded by mu
	objOwner map[types.GlobalAddr]types.SiteID

	// frames waiting (incomplete) at this site. guarded by mu
	frames map[types.FrameID]*wire.Microframe
	// frameOwner is the directory for frames homed here but currently
	// held elsewhere (after migration at sign-off or help replies of
	// incomplete frames). guarded by mu
	frameOwner map[types.FrameID]types.SiteID

	// remap overrides the homesite for addresses whose home left the
	// cluster; learned from broadcast HomeUpdates during sign-off.
	// guarded by mu
	remap map[types.GlobalAddr]types.SiteID

	// readCache holds validated read replicas of remote objects
	// (COMA read replication, paper §4: objects "migrate or even be
	// copied to other sites"). Coherence is write-invalidate: the owner
	// tracks a copyset per object and sends invalidations when the
	// object changes or migrates. Each entry remembers the version it
	// mirrors and the site that served it, so replicas sourced from a
	// departed site can be purged. guarded by mu
	readCache map[types.GlobalAddr]replica
	// copies is the owner-side copyset: sites holding read replicas of a
	// locally owned object. guarded by mu
	copies map[types.GlobalAddr]map[types.SiteID]bool
	// fetching single-flights remote reads: concurrent readers of one
	// address share a single fetch instead of a thundering herd.
	// guarded by mu
	fetching map[types.GlobalAddr]*fetchState
	// heat is the owner-side decayed per-writer access count for each
	// locally owned object — the signal that migrates the home toward
	// its hottest writer (noteWriteLocked). guarded by mu
	heat map[types.GlobalAddr]map[types.SiteID]uint32

	// consumed records frames that already fired, distinguishing the
	// programming error "parameter for a consumed frame" from routing
	// races worth retrying. guarded by mu
	consumed map[types.FrameID]bool

	// pendingRetries caps re-queues of parameters whose target frame is
	// in flight, so a parameter for a frame that never materializes is
	// eventually dropped instead of looping forever. guarded by mu
	pendingRetries map[wire.Target]int
}

func (s *memShard) init() {
	// Runs before the Manager is published, but taking the lock keeps
	// the guarded-by discipline uniform (and costs nothing once).
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[types.GlobalAddr]*wire.MemObject)
	s.objOwner = make(map[types.GlobalAddr]types.SiteID)
	s.frames = make(map[types.FrameID]*wire.Microframe)
	s.frameOwner = make(map[types.FrameID]types.SiteID)
	s.remap = make(map[types.GlobalAddr]types.SiteID)
	s.readCache = make(map[types.GlobalAddr]replica)
	s.copies = make(map[types.GlobalAddr]map[types.SiteID]bool)
	s.fetching = make(map[types.GlobalAddr]*fetchState)
	s.heat = make(map[types.GlobalAddr]map[types.SiteID]uint32)
	s.consumed = make(map[types.FrameID]bool)
	s.pendingRetries = make(map[wire.Target]int)
}

// replica is one cached read copy of a remote object.
type replica struct {
	data    []byte
	version uint64       // object version the bytes correspond to
	from    types.SiteID // owner that served the copy
}

// fetchState is the single-flight marker for one in-progress remote
// read. An invalidation arriving while the fetch is in flight poisons
// it: the owner has already removed this site from the copyset (the
// request that registered it raced the write), so installing the
// fetched bytes would create a replica no future write can invalidate.
// poisoned is guarded by the shard mutex.
type fetchState struct {
	done     chan struct{}
	poisoned bool
}

// purgeReplicaLocked removes any local replica of addr and poisons an
// in-flight fetch so a racing install cannot resurrect stale bytes.
// Caller holds s.mu. Reports whether a cached replica was dropped.
func (s *memShard) purgeReplicaLocked(addr types.GlobalAddr) bool {
	if st, ok := s.fetching[addr]; ok {
		st.poisoned = true
	}
	_, had := s.readCache[addr]
	if had {
		delete(s.readCache, addr)
	}
	return had
}

// Manager is one site's attraction memory.
type Manager struct {
	bus     *msgbus.Bus
	fire    FireFunc
	traffic func(prog types.ProgramID, bytes int)
	tr      *trace.Tracer

	nextLocal atomic.Uint64

	// shards partitions all address-keyed state; see memShard.
	shards [shardCount]memShard

	// cacheEnabled allows the A-6 ablation to disable replication.
	cacheEnabled atomic.Bool

	logMu sync.Mutex
	// Sender-side logs for crash recovery ([4]): paramLog keeps every
	// parameter sent to a remote frame, grantLog every frame handed to
	// a peer (help replies, pushes). When a peer is declared crashed,
	// Replay resends/re-injects them; duplicate applications are
	// rejected by the Filled/consumed guards, and deterministic
	// microthreads make re-execution converge on the same results.
	// guarded by logMu
	paramLog map[types.ProgramID][]loggedParam
	// guarded by logMu
	grantLog map[types.SiteID][]*wire.Microframe

	counts counters

	// met holds the metrics instruments. The zero value (all nil
	// pointers) is fully inert, so no hot path needs an enabled check.
	// Written once by SetMetrics at daemon construction.
	met memMetrics

	// done unblocks retry pauses when the daemon shuts down, so a
	// SendFor or fetch backoff never outlives the site.
	done      chan struct{}
	closeOnce sync.Once

	rngMu sync.Mutex
	// rng jitters retry backoff so sites that miss the same owner at
	// the same moment don't re-collide every round. Seeded per site by
	// the daemon (SetSeed) to keep chaos runs reproducible. guarded by rngMu
	rng *rand.Rand
}

// shardFor maps an address to its shard. The multiply-xorshift mix
// spreads sequentially allocated Local values (the common case) across
// all shards instead of clustering them.
func (m *Manager) shardFor(a types.GlobalAddr) *memShard {
	h := a.Local*0x9e3779b97f4a7c15 + uint64(a.Home)*0xbf58476d1ce4e5b9
	h ^= h >> 32
	return &m.shards[h&(shardCount-1)]
}

// lockShard acquires s.mu, counting acquisitions that had to wait — the
// mem.shard.contention counter is the sharding's own health signal: it
// staying near zero under load means the partitioning works.
func (m *Manager) lockShard(s *memShard) {
	if s.mu.TryLock() {
		return
	}
	m.counts.shardContention.Add(1)
	m.met.shardContention.Inc()
	s.mu.Lock()
}

// retryPolicy paces parameter-send and fetch retries: directory updates
// propagate in a few ms, so start just above that and cap well below the
// crash-detection timescale. Jitter desynchronises competing fetchers.
var retryPolicy = backoff.Policy{
	Min:    5 * time.Millisecond,
	Max:    100 * time.Millisecond,
	Jitter: 0.5,
}

// counters hold the manager's statistics as atomics so hot paths can
// bump them without widening any shard's critical section.
type counters struct {
	allocs          atomic.Uint64
	localReads      atomic.Uint64
	remoteReads     atomic.Uint64
	localWrites     atomic.Uint64
	remoteWrites    atomic.Uint64
	paramsApplied   atomic.Uint64
	framesFired     atomic.Uint64
	migrations      atomic.Uint64
	cacheHits       atomic.Uint64
	invalidates     atomic.Uint64
	invalidateAcks  atomic.Uint64
	shardContention atomic.Uint64
	replicaHits     atomic.Uint64
	replicaInvals   atomic.Uint64
	homeMigrations  atomic.Uint64
}

// memMetrics bundles the attraction memory's instruments; every field is
// nil-safe, so the zero value disables collection.
type memMetrics struct {
	localReads      *metrics.Counter
	remoteReads     *metrics.Counter
	cacheHits       *metrics.Counter
	localWrites     *metrics.Counter
	remoteWrites    *metrics.Counter
	paramsApplied   *metrics.Counter
	framesFired     *metrics.Counter
	migrations      *metrics.Counter
	fetchRetries    *metrics.Counter
	invalidates     *metrics.Counter
	invalidateAcks  *metrics.Counter
	invalidateRTT   *metrics.Histogram
	shardContention *metrics.Counter
	replicaHits     *metrics.Counter
	replicaInvals   *metrics.Counter
	homeMigrations  *metrics.Counter
}

// SetMetrics installs the instruments. Called once at daemon construction;
// a nil registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = memMetrics{
		localReads:      reg.Counter("mem.local_reads"),
		remoteReads:     reg.Counter("mem.remote_reads"),
		cacheHits:       reg.Counter("mem.cache_hits"),
		localWrites:     reg.Counter("mem.local_writes"),
		remoteWrites:    reg.Counter("mem.remote_writes"),
		paramsApplied:   reg.Counter("mem.params_applied"),
		framesFired:     reg.Counter("mem.frames_fired"),
		migrations:      reg.Counter("mem.migrations"),
		fetchRetries:    reg.Counter("mem.fetch_retries"),
		invalidates:     reg.Counter("mem.invalidates"),
		invalidateAcks:  reg.Counter("mem.invalidate_acks"),
		invalidateRTT:   reg.Histogram("mem.invalidate_rtt", nil),
		shardContention: reg.Counter("mem.shard.contention"),
		replicaHits:     reg.Counter("mem.replica.hits"),
		replicaInvals:   reg.Counter("mem.replica.invalidations"),
		homeMigrations:  reg.Counter("mem.home.migrations"),
	}
	reg.GaugeFunc("mem.objects", func() int64 { return int64(m.ObjectCount()) })
	reg.GaugeFunc("mem.frames_waiting", func() int64 { return int64(m.FrameCount()) })
}

// loggedParam is one replayable remote parameter application.
type loggedParam struct {
	target wire.Target
	data   []byte
}

// Stats counts attraction-memory activity for the site manager.
type Stats struct {
	Allocs          uint64
	LocalReads      uint64
	RemoteReads     uint64
	LocalWrites     uint64
	RemoteWrites    uint64
	ParamsApplied   uint64
	FramesFired     uint64
	Migrations      uint64
	CacheHits       uint64 // reads served from a local replica
	Invalidates     uint64 // replicas dropped after a remote write
	InvalidateAcks  uint64 // invalidation round-trips confirmed by a Barrier reply
	ShardContention uint64 // shard-lock acquisitions that had to wait
	ReplicaHits     uint64 // reads served from a versioned read replica
	ReplicaInvals   uint64 // replica entries purged by invalidation or site departure
	HomeMigrations  uint64 // heat-triggered ownership pushes toward a dominant writer
}

// New returns an attraction memory bound to bus, delivering executable
// frames through fire. It registers itself for MgrMemory.
func New(bus *msgbus.Bus, fire FireFunc) *Manager {
	m := &Manager{
		bus:      bus,
		fire:     fire,
		paramLog: make(map[types.ProgramID][]loggedParam),
		grantLog: make(map[types.SiteID][]*wire.Microframe),
		done:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(1)),
	}
	for i := range m.shards {
		m.shards[i].init()
	}
	m.cacheEnabled.Store(true)
	m.traffic = func(types.ProgramID, int) {}
	bus.Register(types.MgrMemory, m)
	return m
}

// SetTracer installs the event tracer (nil = off).
func (m *Manager) SetTracer(t *trace.Tracer) { m.tr = t }

// SetSeed reseeds the retry-jitter RNG. The daemon calls it once at
// construction with a per-site seed so chaos runs are reproducible.
func (m *Manager) SetSeed(seed int64) {
	m.rngMu.Lock()
	m.rng = rand.New(rand.NewSource(seed))
	m.rngMu.Unlock()
}

// retryDelay computes the jittered backoff for the given retry attempt.
func (m *Manager) retryDelay(attempt int) time.Duration {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return retryPolicy.Delay(attempt, m.rng)
}

// Close interrupts every in-flight retry pause. Idempotent; called by
// the daemon on SignOff and Kill.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.done) })
}

// pause sleeps for d unless the manager is closed first; it reports
// whether the caller should keep retrying.
func (m *Manager) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.done:
		return false
	case <-t.C:
		return true
	}
}

// SetReadReplication toggles COMA read replication (default on); the
// A-6 ablation measures its effect.
func (m *Manager) SetReadReplication(enabled bool) {
	m.cacheEnabled.Store(enabled)
	if !enabled {
		for i := range m.shards {
			s := &m.shards[i]
			m.lockShard(s)
			s.readCache = make(map[types.GlobalAddr]replica)
			s.mu.Unlock()
		}
	}
}

// SetTrafficHook installs the accounting manager's meter for parameter
// data produced on behalf of a program.
func (m *Manager) SetTrafficHook(f func(prog types.ProgramID, bytes int)) {
	if f != nil {
		m.traffic = f
	}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Allocs:          m.counts.allocs.Load(),
		LocalReads:      m.counts.localReads.Load(),
		RemoteReads:     m.counts.remoteReads.Load(),
		LocalWrites:     m.counts.localWrites.Load(),
		RemoteWrites:    m.counts.remoteWrites.Load(),
		ParamsApplied:   m.counts.paramsApplied.Load(),
		FramesFired:     m.counts.framesFired.Load(),
		Migrations:      m.counts.migrations.Load(),
		CacheHits:       m.counts.cacheHits.Load(),
		Invalidates:     m.counts.invalidates.Load(),
		InvalidateAcks:  m.counts.invalidateAcks.Load(),
		ShardContention: m.counts.shardContention.Load(),
		ReplicaHits:     m.counts.replicaHits.Load(),
		ReplicaInvals:   m.counts.replicaInvals.Load(),
		HomeMigrations:  m.counts.homeMigrations.Load(),
	}
}

// newAddr issues a fresh global address homed at this site.
func (m *Manager) newAddr() types.GlobalAddr {
	return types.GlobalAddr{Home: m.bus.Self(), Local: m.nextLocal.Add(1)}
}

// ---------------------------------------------------------------------------
// Local API: called by the execution layer (may block on remote traffic).

// Alloc creates a memory object of the given contents for program prog,
// homed and initially owned at this site, and returns its global address
// — "it will receive a global memory address ... and is thus accessible
// from all sites in the cluster" (paper §4).
func (m *Manager) Alloc(prog types.ProgramID, data []byte) types.GlobalAddr {
	addr := m.newAddr()
	s := m.shardFor(addr)
	m.lockShard(s)
	s.objects[addr] = &wire.MemObject{
		Addr:    addr,
		Program: prog,
		Data:    append([]byte(nil), data...),
	}
	s.mu.Unlock()
	m.counts.allocs.Add(1)
	return addr
}

// NewFrame allocates a microframe homed at this site. A zero-arity frame
// is executable immediately and goes straight to the scheduler; any other
// frame waits in the attraction memory for its parameters.
func (m *Manager) NewFrame(thread types.ThreadID, arity int, prio types.Priority, hint uint32, targets ...wire.Target) types.FrameID {
	id := m.newAddr()
	f := wire.NewMicroframe(id, thread, arity, targets...)
	f.Prio = prio
	f.Hint = hint
	s := m.shardFor(id)
	m.lockShard(s)
	if arity == 0 {
		s.consumed[id] = true
		s.mu.Unlock()
		m.counts.framesFired.Add(1)
		m.met.framesFired.Inc()
		m.tr.Record(trace.EvFrameCreated, id, thread, "zero arity")
		m.tr.Record(trace.EvFrameFired, id, thread, "")
		m.fire(f)
		return id
	}
	s.frames[id] = f
	s.mu.Unlock()
	m.tr.Record(trace.EvFrameCreated, id, thread, fmt.Sprintf("arity %d", arity))
	return id
}

// AdoptFrame registers a frame that migrated here (help reply of a
// waiting frame, sign-off relocation, checkpoint recovery). The frame's
// homesite is informed so future parameters find it.
func (m *Manager) AdoptFrame(f *wire.Microframe) {
	s := m.shardFor(f.ID)
	m.lockShard(s)
	if s.consumed[f.ID] {
		s.mu.Unlock()
		return
	}
	if f.Executable() {
		s.consumed[f.ID] = true
		s.mu.Unlock()
		m.counts.framesFired.Add(1)
		m.met.framesFired.Inc()
		m.fire(f)
		return
	}
	s.frames[f.ID] = f
	s.mu.Unlock()
	self := m.bus.Self()
	m.tr.Record(trace.EvReceived, f.ID, f.Thread, "incomplete frame adopted")

	if f.ID.Home != self {
		_ = m.bus.Send(f.ID.Home, types.MgrMemory, types.MgrMemory,
			&wire.HomeUpdate{Addr: f.ID, Owner: self})
	}
}

// Send applies one result datum to a parameter slot of a target frame,
// locally or across the cluster — the SDVM's fundamental dataflow step
// (paper §3.2, action 4). It retries transient routing failures: frames
// migrate, sites leave, directories lag.
func (m *Manager) Send(target wire.Target, data []byte) error {
	return m.SendFor(0, target, data)
}

// SendFor is Send with the owning program recorded in the crash-recovery
// log (prog 0 skips logging; used for bootstrap-internal sends).
func (m *Manager) SendFor(prog types.ProgramID, target wire.Target, data []byte) error {
	if prog != 0 {
		m.traffic(prog, len(data))
		m.logMu.Lock()
		m.paramLog[prog] = append(m.paramLog[prog], loggedParam{target, append([]byte(nil), data...)})
		m.logMu.Unlock()
	}
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		done, err := m.trySend(target, data)
		if done {
			return err
		}
		lastErr = err
		m.met.fetchRetries.Inc()
		if !m.pause(m.retryDelay(attempt)) {
			break // shutting down: the send can never succeed now
		}
	}
	return fmt.Errorf("memory: apply %v: %w", target, lastErr)
}

// RecordGrant logs a frame handed to a peer, for re-injection if that
// peer crashes before the frame's results are observed.
func (m *Manager) RecordGrant(grantee types.SiteID, f *wire.Microframe) {
	m.logMu.Lock()
	m.grantLog[grantee] = append(m.grantLog[grantee], f.Clone())
	m.logMu.Unlock()
}

// ReclaimGrants removes and returns the logged grants to grantee whose
// frame ids are in ids. The scheduler calls it when the help reply
// carrying those frames could not be delivered (the requester signed
// off gracefully, so no crash declaration will ever replay them).
// Sharing logMu with OnSiteCrashed makes the hand-back atomic with
// crash replay: a frame is either returned here or replayed there,
// never both.
func (m *Manager) ReclaimGrants(grantee types.SiteID, ids []types.FrameID) []*wire.Microframe {
	want := make(map[types.FrameID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	m.logMu.Lock()
	defer m.logMu.Unlock()
	var reclaimed, kept []*wire.Microframe
	for _, f := range m.grantLog[grantee] {
		if want[f.ID] {
			reclaimed = append(reclaimed, f)
		} else {
			kept = append(kept, f)
		}
	}
	if len(kept) == 0 {
		delete(m.grantLog, grantee)
	} else {
		m.grantLog[grantee] = kept
	}
	return reclaimed
}

// OnSiteCrashed replays this site's logs after dead was declared
// crashed: frames granted to the dead site re-enter the dataflow here,
// and every logged parameter of still-running programs is resent (stale
// copies are dropped at the receivers).
func (m *Manager) OnSiteCrashed(dead types.SiteID, running func(types.ProgramID) bool) {
	// First sever coherence state: replicas the dead site served may
	// predate whatever checkpoint recovery restores, and its copyset
	// entries would make every future write wait out the invalidation
	// deadline for an ack that never comes.
	m.DropSiteReplicas(dead)

	m.logMu.Lock()
	granted := m.grantLog[dead]
	delete(m.grantLog, dead)
	var params []loggedParam
	for prog, entries := range m.paramLog {
		if running == nil || running(prog) {
			params = append(params, entries...)
		}
	}
	m.logMu.Unlock()

	for _, f := range granted {
		if running == nil || running(f.Thread.Program) {
			m.AdoptFrame(f.Clone())
		}
	}
	for _, p := range params {
		// Ignore errors: most replays hit already-filled slots.
		_ = m.Send(p.target, p.data)
	}
}

// trySend attempts one delivery. done=false means "retry may help".
func (m *Manager) trySend(target wire.Target, data []byte) (done bool, err error) {
	s := m.shardFor(target.Addr)
	m.lockShard(s)
	if f, ok := s.frames[target.Addr]; ok {
		err := m.applyLocked(s, f, int(target.Slot), data)
		s.mu.Unlock()
		return true, err
	}
	if s.consumed[target.Addr] {
		s.mu.Unlock()
		return true, &types.AddrError{Err: types.ErrNoSuchFrame, Addr: target.Addr}
	}
	dst := m.routeFrameLocked(s, target.Addr)
	s.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		// Nobody known to hold it (yet): relocation in flight.
		return false, &types.AddrError{Err: types.ErrNoSuchFrame, Addr: target.Addr}
	}
	sendErr := m.bus.Send(dst, types.MgrMemory, types.MgrMemory,
		&wire.ApplyParam{Dst: target, Data: data})
	if sendErr != nil {
		return false, sendErr
	}
	return true, nil
}

// applyLocked fills a slot of a frame held in shard s, firing it if
// complete. Caller holds s.mu; the fire callback runs without the lock.
func (m *Manager) applyLocked(s *memShard, f *wire.Microframe, slot int, data []byte) error {
	fires, err := f.Apply(slot, data)
	if err != nil {
		return err
	}
	m.counts.paramsApplied.Add(1)
	m.met.paramsApplied.Inc()
	if !fires {
		m.tr.Record(trace.EvParamApplied, f.ID, f.Thread, fmt.Sprintf("slot %d, %d missing", slot, f.Missing()))
		return nil
	}
	delete(s.frames, f.ID)
	s.consumed[f.ID] = true
	m.counts.framesFired.Add(1)
	m.met.framesFired.Inc()
	fire := m.fire
	s.mu.Unlock()
	m.tr.Record(trace.EvFrameFired, f.ID, f.Thread, fmt.Sprintf("last slot %d", slot))
	fire(f)
	m.lockShard(s)
	return nil
}

// routeFrameLocked decides where a parameter for a non-resident frame
// should go. Caller holds s.mu.
func (m *Manager) routeFrameLocked(s *memShard, id types.FrameID) types.SiteID {
	if owner, ok := s.frameOwner[id]; ok {
		return owner
	}
	if owner, ok := s.remap[id]; ok {
		return owner
	}
	if id.Home != m.bus.Self() {
		return id.Home
	}
	return types.InvalidSite
}

// Read returns a copy of the object's current contents, fetching it from
// its owner if it is not resident ("when they are needed, they migrate to
// the corresponding site" — reads take a copy, write intent migrates).
func (m *Manager) Read(addr types.GlobalAddr) ([]byte, error) {
	s := m.shardFor(addr)
	for {
		m.lockShard(s)
		if o, ok := s.objects[addr]; ok {
			data := append([]byte(nil), o.Data...)
			s.mu.Unlock()
			m.counts.localReads.Add(1)
			m.met.localReads.Inc()
			return data, nil
		}
		if rep, ok := s.readCache[addr]; ok {
			out := append([]byte(nil), rep.data...)
			s.mu.Unlock()
			m.counts.cacheHits.Add(1)
			m.met.cacheHits.Inc()
			m.counts.replicaHits.Add(1)
			m.met.replicaHits.Inc()
			return out, nil
		}
		if st, inflight := s.fetching[addr]; inflight && m.cacheEnabled.Load() {
			// Another microthread is already fetching this object;
			// share its result instead of stampeding the owner.
			s.mu.Unlock()
			<-st.done
			continue
		}
		st := &fetchState{done: make(chan struct{})}
		s.fetching[addr] = st
		s.mu.Unlock()
		m.counts.remoteReads.Add(1)
		m.met.remoteReads.Inc()

		if !m.cacheEnabled.Load() {
			// Replication ablated (A-6): plain uncached owner read.
			o, err := m.fetch(addr, false)
			m.lockShard(s)
			delete(s.fetching, addr)
			close(st.done)
			s.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return o.Data, nil
		}
		rep, err := m.fetchReplica(addr)
		m.lockShard(s)
		if err == nil && m.cacheEnabled.Load() && !st.poisoned {
			s.readCache[addr] = rep
		}
		delete(s.fetching, addr)
		close(st.done)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		// The cached slice must not alias the caller's view.
		return append([]byte(nil), rep.data...), nil
	}
}

// fetchReplica retrieves a versioned read replica of addr from its
// current owner, following redirects with the same retry pacing as
// fetch. The owner registers this site in the object's copyset before
// answering, so the installed replica is covered by write-invalidation
// from the moment it exists.
func (m *Manager) fetchReplica(addr types.GlobalAddr) (replica, error) {
	var lastErr error
	for round := 0; round < 5; round++ {
		rep, retry, err := m.fetchReplicaOnce(addr)
		if err == nil {
			return rep, nil
		}
		if !retry {
			return replica{}, err
		}
		lastErr = err
		m.met.fetchRetries.Inc()
		if !m.pause(m.retryDelay(round)) {
			break // shutting down: stop chasing the directory
		}
	}
	return replica{}, lastErr
}

// fetchReplicaOnce runs one redirect chase of the replica protocol.
// retry reports whether the failure is plausibly transient.
func (m *Manager) fetchReplicaOnce(addr types.GlobalAddr) (rep replica, retry bool, err error) {
	s := m.shardFor(addr)
	m.lockShard(s)
	dst := m.routeObjectLocked(s, addr)
	s.mu.Unlock()
	if dst == types.InvalidSite {
		return replica{}, false, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
	}

	for hop := 0; hop < maxRedirects; hop++ {
		reply, err := m.bus.Request(dst, types.MgrMemory, types.MgrMemory,
			&wire.MemReadReplica{Addr: addr}, 0)
		if err != nil {
			return replica{}, true, err
		}
		rd, ok := reply.Payload.(*wire.MemReplicaData)
		if !ok {
			return replica{}, false, fmt.Errorf("%w: mem replica reply %T", types.ErrBadMessage, reply.Payload)
		}
		switch {
		case rd.Found && rd.Redirect == types.InvalidSite:
			return replica{data: rd.Data, version: rd.Version, from: dst}, false, nil
		case rd.Redirect != types.InvalidSite && rd.Redirect != dst:
			dst = rd.Redirect
		default:
			return replica{}, true, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
		}
	}
	return replica{}, true, fmt.Errorf("memory: replica read %v: redirect chain too long", addr)
}

// Attract migrates the object to this site (ownership transfer) and
// returns a copy of its contents — COMA attraction on write intent.
func (m *Manager) Attract(addr types.GlobalAddr) ([]byte, error) {
	s := m.shardFor(addr)
	m.lockShard(s)
	if o, ok := s.objects[addr]; ok {
		data := append([]byte(nil), o.Data...)
		s.mu.Unlock()
		return data, nil
	}
	s.mu.Unlock()

	o, err := m.fetch(addr, true)
	if err != nil {
		return nil, err
	}

	m.lockShard(s)
	s.objects[addr] = o
	// The resident object supersedes any replica we held; a stale one
	// left here (or installed by a racing fetch) would resurface once
	// the object migrates away again.
	s.purgeReplicaLocked(addr)
	// Snapshot while still holding the lock: the moment the object is
	// installed, a concurrent local Write may mutate its backing array.
	data := append([]byte(nil), o.Data...)
	s.mu.Unlock()
	m.counts.migrations.Add(1)
	m.met.migrations.Inc()
	self := m.bus.Self()

	// Keep the homesite directory current.
	if addr.Home != self {
		_ = m.bus.Send(addr.Home, types.MgrMemory, types.MgrMemory,
			&wire.HomeUpdate{Addr: addr, Owner: self})
	}
	return data, nil
}

// fetch resolves addr through the homesite directory and retrieves the
// object, following redirects. Ownership can move mid-chase (directory
// updates are asynchronous), so an exhausted redirect chain is retried
// after a short pause rather than failed outright.
func (m *Manager) fetch(addr types.GlobalAddr, migrate bool) (*wire.MemObject, error) {
	var lastErr error
	for round := 0; round < 5; round++ {
		o, retry, err := m.fetchOnce(addr, migrate)
		if err == nil {
			return o, nil
		}
		if !retry {
			return nil, err
		}
		lastErr = err
		m.met.fetchRetries.Inc()
		if !m.pause(m.retryDelay(round)) {
			break // shutting down: stop chasing the directory
		}
	}
	return nil, lastErr
}

// fetchOnce runs one redirect chase. retry reports whether the failure
// is plausibly transient (in-flight migration).
func (m *Manager) fetchOnce(addr types.GlobalAddr, migrate bool) (obj *wire.MemObject, retry bool, err error) {
	s := m.shardFor(addr)
	m.lockShard(s)
	dst := m.routeObjectLocked(s, addr)
	s.mu.Unlock()
	if dst == types.InvalidSite {
		return nil, false, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
	}

	for hop := 0; hop < maxRedirects; hop++ {
		reply, err := m.bus.Request(dst, types.MgrMemory, types.MgrMemory,
			&wire.MemRead{Addr: addr, Migrate: migrate}, 0)
		if err != nil {
			return nil, true, err
		}
		rr, ok := reply.Payload.(*wire.MemReadReply)
		if !ok {
			return nil, false, fmt.Errorf("%w: mem read reply %T", types.ErrBadMessage, reply.Payload)
		}
		switch {
		case rr.Found && rr.Redirect == types.InvalidSite:
			o := rr.Object
			return &o, false, nil
		case rr.Redirect != types.InvalidSite && rr.Redirect != dst:
			dst = rr.Redirect
		default:
			return nil, true, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
		}
	}
	return nil, true, fmt.Errorf("memory: read %v: redirect chain too long", addr)
}

// takeCopysetLocked removes and returns the copyset of addr, excluding
// skip (the site whose action triggered the invalidation — it holds the
// fresh version). The result lives in inv's reused scratch slice and is
// valid only until the next take; callers hand it straight to inv.add.
// Caller holds s.mu.
func (m *Manager) takeCopysetLocked(s *memShard, inv *invalidation, addr types.GlobalAddr, skip types.SiteID) []types.SiteID {
	cs, ok := s.copies[addr]
	if !ok {
		return nil
	}
	delete(s.copies, addr)
	out := inv.sites[:0]
	for id := range cs {
		if id != skip {
			out = append(out, id)
		}
	}
	inv.sites = out
	return out
}

// invalidation accumulates, per holder site, every address that site
// must drop, so one batched round-trip per holder replaces one
// round-trip per (holder, address) pair. Instances are pooled: writes
// are the memory manager's hottest coherence path, and the map plus its
// per-holder address slices would otherwise be reallocated per write.
// getInvalidation hands one out; sendInvalidates returns it (the batch
// payloads are serialized before Request blocks, so by the time the
// acks are in, nothing references the slices).
type invalidation struct {
	holders map[types.SiteID][]types.GlobalAddr
	sites   []types.SiteID       // takeCopysetLocked scratch
	spare   [][]types.GlobalAddr // recycled holder slices
}

var invPool = sync.Pool{New: func() any {
	return &invalidation{holders: make(map[types.SiteID][]types.GlobalAddr)}
}}

// getInvalidation returns an empty pooled accumulator.
func getInvalidation() *invalidation { return invPool.Get().(*invalidation) }

// putInvalidation recycles inv: holder slices go back to the spare list
// (capacity retained), the map empties.
func putInvalidation(inv *invalidation) {
	for id, a := range inv.holders {
		delete(inv.holders, id)
		inv.spare = append(inv.spare, a[:0])
	}
	invPool.Put(inv)
}

// add records that every site in sites holds a stale copy of addr.
func (inv *invalidation) add(addr types.GlobalAddr, sites []types.SiteID) {
	for _, id := range sites {
		a, ok := inv.holders[id]
		if !ok && len(inv.spare) > 0 {
			a = inv.spare[len(inv.spare)-1]
			inv.spare = inv.spare[:len(inv.spare)-1]
		}
		inv.holders[id] = append(a, addr)
	}
}

// empty reports whether no holder has anything to drop.
func (inv *invalidation) empty() bool { return len(inv.holders) == 0 }

// sendInvalidates drops replica holders' copies and waits for their
// acknowledgements (bounded), so a writer that has been acked can rely
// on no stale replica surviving anywhere. All addresses for one holder
// travel in a single MemInvalidateBatch under one shared deadline.
// Takes ownership of inv and returns it to the pool.
func (m *Manager) sendInvalidates(inv *invalidation) {
	defer putInvalidation(inv)
	if inv.empty() {
		return
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	var wg sync.WaitGroup
	var acked atomic.Uint64
	for id, addrs := range inv.holders {
		id, addrs := id, addrs
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			reply, err := m.bus.Request(id, types.MgrMemory, types.MgrMemory,
				&wire.MemInvalidateBatch{Addrs: addrs}, time.Until(deadline))
			if err != nil {
				return // bounded wait: a dead replica holder cannot ack
			}
			if _, ok := reply.Payload.(*wire.Barrier); ok {
				acked.Add(1)
				m.met.invalidateRTT.Observe(time.Since(start))
			}
		}()
	}
	wg.Wait()
	m.counts.invalidateAcks.Add(acked.Load())
	m.met.invalidateAcks.Add(acked.Load())
}

// routeObjectLocked picks the first site to ask about addr. Caller holds
// s.mu.
func (m *Manager) routeObjectLocked(s *memShard, addr types.GlobalAddr) types.SiteID {
	if owner, ok := s.objOwner[addr]; ok {
		return owner
	}
	if owner, ok := s.remap[addr]; ok {
		return owner
	}
	if addr.Home != m.bus.Self() {
		return addr.Home
	}
	return types.InvalidSite
}

// Heat-based home migration (attraction memory v2): each owner keeps a
// decayed per-writer access count per resident object. Once a remote
// writer's share of the recent write window dominates everyone else
// combined, the object is pushed to that writer so its writes become
// local — observed access heat drives placement instead of static
// ownership.
const (
	// heatWindow bounds the per-object counter total; reaching it halves
	// every counter, so old traffic fades geometrically. The decay is
	// op-count based, not wall-clock, so seeded runs stay reproducible.
	heatWindow = 64
	// heatMigrateMin is the decayed count a remote writer needs before a
	// push is even considered; below it the signal is noise.
	heatMigrateMin = 8
	// heatDominance: a remote writer must exceed this multiple of all
	// other writers combined (including the owner) to attract the home.
	heatDominance = 2
)

// noteWriteLocked records one write to addr by writer in the shard-local
// heat table and returns the site the object should migrate to, or
// InvalidSite. Caller holds s.mu; the caller triggers the actual
// migration after releasing the lock and invalidating replicas.
func (m *Manager) noteWriteLocked(s *memShard, addr types.GlobalAddr, writer types.SiteID) types.SiteID {
	if !writer.Valid() {
		return types.InvalidSite
	}
	h := s.heat[addr]
	if h == nil {
		h = make(map[types.SiteID]uint32)
		s.heat[addr] = h
	}
	h[writer]++
	var total uint32
	for _, c := range h {
		total += c
	}
	if total >= heatWindow {
		total = 0
		for id, c := range h {
			c /= 2
			if c == 0 {
				delete(h, id)
				continue
			}
			h[id] = c
			total += c
		}
	}
	if writer == m.bus.Self() {
		return types.InvalidSite
	}
	c := h[writer]
	if c < heatMigrateMin || c <= heatDominance*(total-c) {
		return types.InvalidSite
	}
	return writer
}

// migrateHome pushes a locally owned object to its dominant writer (the
// decision made in noteWriteLocked), invalidating every outstanding
// replica — ownership moved, so the new owner starts a fresh copyset —
// and shipping the decayed heat table along so the new owner's
// migration judgement does not restart cold. Runs off the dispatcher.
func (m *Manager) migrateHome(addr types.GlobalAddr, dst types.SiteID) {
	self := m.bus.Self()
	if dst == self || !dst.Valid() {
		return
	}
	s := m.shardFor(addr)
	m.lockShard(s)
	o, ok := s.objects[addr]
	if !ok {
		s.mu.Unlock()
		return // already migrated or dropped; the heat signal was stale
	}
	obj := *o.Clone()
	delete(s.objects, addr)
	if addr.Home == self {
		s.objOwner[addr] = dst
	} else {
		// Transit hint, exactly like the Attract path: until the home
		// directory catches up, traffic arriving here is forwarded.
		s.remap[addr] = dst
	}
	inv := getInvalidation()
	inv.add(addr, m.takeCopysetLocked(s, inv, addr, dst))
	ht := &wire.MemHeatTransfer{Addr: addr}
	for id, c := range s.heat[addr] {
		ht.Sites = append(ht.Sites, id)
		ht.Heats = append(ht.Heats, c)
	}
	delete(s.heat, addr)
	s.mu.Unlock()

	m.counts.migrations.Add(1)
	m.met.migrations.Inc()
	m.counts.homeMigrations.Add(1)
	m.met.homeMigrations.Inc()
	// Invalidate before the object lands at dst: a replica holder must
	// never observe the new owner's writes while still caching ours.
	m.sendInvalidates(inv)
	_ = m.bus.Send(dst, types.MgrMemory, types.MgrMemory,
		&wire.MemMigrate{Objects: []wire.MemObject{obj}})
	_ = m.bus.Send(dst, types.MgrMemory, types.MgrMemory, ht)
}

// Write stores data at offset within the object, extending it if needed.
// Non-resident objects are written in place at their owner. Like fetch,
// an exhausted redirect chain is retried after a pause rather than
// failed outright: ownership can be mid-flight between two sites (an
// Attract or heat push in progress), during which home and new owner
// briefly redirect to each other.
func (m *Manager) Write(addr types.GlobalAddr, offset int, data []byte) error {
	var lastErr error
	for round := 0; round < 5; round++ {
		done, err := m.writeOnce(addr, offset, data)
		if done {
			return err
		}
		lastErr = err
		m.met.fetchRetries.Inc()
		if !m.pause(m.retryDelay(round)) {
			break // shutting down: stop chasing the directory
		}
	}
	return lastErr
}

// writeOnce attempts one write resolution. done=false means the failure
// is plausibly transient (in-flight migration) and worth retrying.
func (m *Manager) writeOnce(addr types.GlobalAddr, offset int, data []byte) (done bool, err error) {
	s := m.shardFor(addr)
	m.lockShard(s)
	if o, ok := s.objects[addr]; ok {
		if !writeAt(o, offset, data) {
			s.mu.Unlock()
			return true, fmt.Errorf("memory: write %v: offset %d + %d bytes out of bounds", addr, offset, len(data))
		}
		inv := getInvalidation()
		inv.add(addr, m.takeCopysetLocked(s, inv, addr, types.InvalidSite))
		// Local writes feed the heat table too: the owner's own traffic
		// is the counterweight a remote writer must dominate before the
		// object is pushed away.
		m.noteWriteLocked(s, addr, m.bus.Self())
		s.mu.Unlock()
		m.counts.localWrites.Add(1)
		m.met.localWrites.Inc()
		m.sendInvalidates(inv)
		return true, nil
	}
	// A stale local replica must not survive our own write-through.
	s.purgeReplicaLocked(addr)
	dst := m.routeObjectLocked(s, addr)
	s.mu.Unlock()
	m.counts.remoteWrites.Add(1)
	m.met.remoteWrites.Inc()
	if dst == types.InvalidSite {
		return false, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
	}

	for hop := 0; hop < maxRedirects; hop++ {
		reply, err := m.bus.Request(dst, types.MgrMemory, types.MgrMemory,
			&wire.MemWrite{Addr: addr, Offset: uint32(offset), Data: data}, 0)
		if err != nil {
			return false, err
		}
		ack, ok := reply.Payload.(*wire.MemWriteAck)
		if !ok {
			return true, fmt.Errorf("%w: mem write reply %T", types.ErrBadMessage, reply.Payload)
		}
		if ack.OK {
			return true, nil
		}
		if ack.Redirect == types.InvalidSite || ack.Redirect == dst {
			return false, &types.AddrError{Err: types.ErrNoSuchObject, Addr: addr}
		}
		dst = ack.Redirect
	}
	return false, fmt.Errorf("memory: write %v: redirect chain too long", addr)
}

// maxObjectSize bounds a memory object's backing array. An object must
// fit in one transport datagram to migrate or checkpoint, so growth
// beyond that is a corrupt or malicious request, not a real write.
const maxObjectSize = 16 << 20

// writeAt stores data at offset, growing the object if needed. It
// reports false for an out-of-bounds write (negative offset, or growth
// past maxObjectSize): offsets arrive off the wire and must not size
// allocations unchecked.
func writeAt(o *wire.MemObject, offset int, data []byte) bool {
	need := offset + len(data)
	if offset < 0 || need > maxObjectSize {
		return false
	}
	if need > len(o.Data) {
		grown := make([]byte, need)
		copy(grown, o.Data)
		o.Data = grown
	}
	copy(o.Data[offset:], data)
	o.Version++
	return true
}

// ---------------------------------------------------------------------------
// Relocation, checkpointing, GC.

// EvacuateTo hands every resident frame and object to successor — the
// sign-off protocol's data phase (paper §3.4: "all microframes and the
// local part of the global memory have to be relocated to other sites
// before shutdown"). Peers are told the new owner so the directories
// stay coherent even though this site is about to vanish.
func (m *Manager) EvacuateTo(successor types.SiteID) error {
	var frames []*wire.Microframe
	var objects []wire.MemObject
	self := m.bus.Self()
	inv := getInvalidation()
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		for id, f := range s.frames {
			frames = append(frames, f.Clone())
			// Leave a forwarding trail: parameters and reads already in
			// flight toward this site keep arriving while the daemon
			// drains its inbox, and the local retry timer dies with the
			// bus — they must be forwarded, not parked.
			if id.Home == self {
				s.frameOwner[id] = successor
			} else {
				s.remap[id] = successor
			}
		}
		for addr, o := range s.objects {
			objects = append(objects, *o.Clone())
			if addr.Home == self {
				s.objOwner[addr] = successor
			} else {
				s.remap[addr] = successor
			}
			// Replica holders keyed to this owner's copysets would never
			// hear about the successor's writes; flush them now, while
			// this site can still collect the acks.
			inv.add(addr, m.takeCopysetLocked(s, inv, addr, successor))
		}
		s.frames = make(map[types.FrameID]*wire.Microframe)
		s.objects = make(map[types.GlobalAddr]*wire.MemObject)
		s.heat = make(map[types.GlobalAddr]map[types.SiteID]uint32)
		s.mu.Unlock()
	}
	m.sendInvalidates(inv)

	// Tell everyone where the addresses homed or owned here now live,
	// before moving the data, so in-flight traffic re-routes.
	var updates []*wire.HomeUpdate
	for _, f := range frames {
		updates = append(updates, &wire.HomeUpdate{Addr: f.ID, Owner: successor})
	}
	for i := range objects {
		updates = append(updates, &wire.HomeUpdate{Addr: objects[i].Addr, Owner: successor})
	}
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		for addr, owner := range s.objOwner {
			updates = append(updates, &wire.HomeUpdate{Addr: addr, Owner: owner})
		}
		for id, owner := range s.frameOwner {
			updates = append(updates, &wire.HomeUpdate{Addr: id, Owner: owner})
		}
		s.mu.Unlock()
	}
	for _, u := range updates {
		_ = m.bus.Send(types.Broadcast, types.MgrMemory, types.MgrMemory, u)
	}

	if len(objects) > 0 {
		if err := m.bus.Send(successor, types.MgrMemory, types.MgrMemory,
			&wire.MemMigrate{Objects: objects}); err != nil {
			return fmt.Errorf("memory: evacuate objects: %w", err)
		}
	}
	if len(frames) > 0 {
		if err := m.bus.Send(successor, types.MgrMemory, types.MgrMemory,
			&wire.FrameRelocate{Frames: frames}); err != nil {
			return fmt.Errorf("memory: evacuate frames: %w", err)
		}
	}
	return nil
}

// Snapshot returns deep copies of all resident frames and objects of one
// program, for checkpointing.
func (m *Manager) Snapshot(prog types.ProgramID) (frames []*wire.Microframe, objects []wire.MemObject) {
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		for _, f := range s.frames {
			if f.Thread.Program == prog {
				frames = append(frames, f.Clone())
			}
		}
		for _, o := range s.objects {
			if o.Program == prog {
				objects = append(objects, *o.Clone())
			}
		}
		s.mu.Unlock()
	}
	return frames, objects
}

// Restore adopts checkpointed state (crash recovery): frames re-enter
// the dataflow, objects become resident here. Ownership updates are
// broadcast — the restored addresses' homesite is typically the dead
// site, so a directed directory update would go nowhere.
func (m *Manager) Restore(frames []*wire.Microframe, objects []wire.MemObject) {
	for i := range objects {
		o := objects[i]
		s := m.shardFor(o.Addr)
		m.lockShard(s)
		s.objects[o.Addr] = &o
		s.purgeReplicaLocked(o.Addr)
		s.mu.Unlock()
	}
	self := m.bus.Self()

	for i := range objects {
		if objects[i].Addr.Home != self {
			_ = m.bus.Send(types.Broadcast, types.MgrMemory, types.MgrMemory,
				&wire.HomeUpdate{Addr: objects[i].Addr, Owner: self})
		}
	}
	for _, f := range frames {
		m.AdoptFrame(f.Clone())
		if f.ID.Home != self {
			_ = m.bus.Send(types.Broadcast, types.MgrMemory, types.MgrMemory,
				&wire.HomeUpdate{Addr: f.ID, Owner: self})
		}
	}
}

// DropProgram discards all state of a terminated program ("a flag that
// the program has terminated and thus its microthreads can safely be
// deleted from memory", paper §4).
func (m *Manager) DropProgram(prog types.ProgramID) {
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		for id, f := range s.frames {
			if f.Thread.Program == prog {
				delete(s.frames, id)
			}
		}
		for addr, o := range s.objects {
			if o.Program == prog {
				delete(s.objects, addr)
				delete(s.objOwner, addr)
				delete(s.copies, addr)
				delete(s.heat, addr)
			}
		}
		// Replicas are not program-tagged; drop them all (cheap, and a
		// terminated program's addresses never resolve again anyway).
		s.readCache = make(map[types.GlobalAddr]replica)
		s.mu.Unlock()
	}
	m.logMu.Lock()
	delete(m.paramLog, prog)
	for grantee, frames := range m.grantLog {
		kept := frames[:0]
		for _, f := range frames {
			if f.Thread.Program != prog {
				kept = append(kept, f)
			}
		}
		m.grantLog[grantee] = kept
	}
	m.logMu.Unlock()
}

// FrameCount returns the number of waiting frames (site statistics).
func (m *Manager) FrameCount() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// ObjectCount returns the number of resident objects.
func (m *Manager) ObjectCount() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		n += len(s.objects)
		s.mu.Unlock()
	}
	return n
}

// TakeFrame removes and returns a specific waiting frame (used when a
// help reply hands a waiting frame away — rare, but the scheduler may
// relocate incomplete frames during load balancing).
func (m *Manager) TakeFrame(id types.FrameID) (*wire.Microframe, bool) {
	s := m.shardFor(id)
	m.lockShard(s)
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if ok {
		delete(s.frames, id)
	}
	return f, ok
}

// ---------------------------------------------------------------------------
// Message handling (msgbus dispatcher; must not block).

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.ApplyParam:
		m.handleApplyParam(p)
	case *wire.MemRead:
		m.handleMemRead(msg, p)
	case *wire.MemWrite:
		m.handleMemWrite(msg, p)
	case *wire.MemMigrate:
		m.handleMigrate(p)
	case *wire.MemInvalidate:
		m.dropReplicas(p.Addr)
		_ = m.bus.Reply(msg, types.MgrMemory, &wire.Barrier{})
	case *wire.MemInvalidateBatch:
		for _, addr := range p.Addrs {
			m.dropReplicas(addr)
		}
		_ = m.bus.Reply(msg, types.MgrMemory, &wire.Barrier{})
	case *wire.HomeUpdate:
		m.handleHomeUpdate(msg.Src, p)
	case *wire.FrameRelocate:
		for _, f := range p.Frames {
			m.AdoptFrame(f)
		}
	case *wire.MemReadReplica:
		m.handleMemReadReplica(msg, p)
	case *wire.MemHeatTransfer:
		m.handleHeatTransfer(p)
	}
}

// dropReplicas discards the local read replica of addr, if any, and
// poisons an in-flight fetch: the invalidation proves the owner already
// removed this site from the copyset, so bytes still in flight would
// install a replica no future write can reach.
func (m *Manager) dropReplicas(addr types.GlobalAddr) {
	s := m.shardFor(addr)
	m.lockShard(s)
	had := s.purgeReplicaLocked(addr)
	s.mu.Unlock()
	if had {
		m.counts.invalidates.Add(1)
		m.met.invalidates.Inc()
		m.counts.replicaInvals.Add(1)
		m.met.replicaInvals.Inc()
	}
}

// DropSiteReplicas severs every coherence tie to a departed site: local
// replicas it served are purged (a crashed owner may be restored from
// an older checkpoint, so bytes it served can no longer be trusted),
// in-flight fetches are poisoned, the site leaves every owner-side
// copyset (a write must not spend its invalidation deadline waiting on
// an ack that can never come), and its heat counters are forgotten so a
// dead site cannot attract an object. The daemon calls this for both
// crash declarations and graceful sign-offs.
func (m *Manager) DropSiteReplicas(site types.SiteID) {
	var dropped uint64
	for i := range m.shards {
		s := &m.shards[i]
		m.lockShard(s)
		for addr, rep := range s.readCache {
			if rep.from == site {
				delete(s.readCache, addr)
				dropped++
			}
		}
		for _, st := range s.fetching {
			st.poisoned = true
		}
		for addr, cs := range s.copies {
			if cs[site] {
				delete(cs, site)
				if len(cs) == 0 {
					delete(s.copies, addr)
				}
			}
		}
		for addr, h := range s.heat {
			if _, ok := h[site]; ok {
				delete(h, site)
				if len(h) == 0 {
					delete(s.heat, addr)
				}
			}
		}
		s.mu.Unlock()
	}
	if dropped > 0 {
		m.counts.replicaInvals.Add(dropped)
		m.met.replicaInvals.Add(dropped)
	}
}

// handleMemReadReplica serves the replica protocol's fault-in: the
// requester is registered in the copyset under the same lock that
// snapshots the data, so a write committing after this point takes a
// copyset that includes the requester — the replica being installed is
// invalidated, never silently stale.
func (m *Manager) handleMemReadReplica(msg *wire.Message, p *wire.MemReadReplica) {
	s := m.shardFor(p.Addr)
	m.lockShard(s)
	if o, ok := s.objects[p.Addr]; ok {
		if msg.Src.Valid() && msg.Src != m.bus.Self() {
			cs, ok := s.copies[p.Addr]
			if !ok {
				cs = make(map[types.SiteID]bool)
				s.copies[p.Addr] = cs
			}
			cs[msg.Src] = true
		}
		reply := &wire.MemReplicaData{Found: true, Version: o.Version,
			Data: append([]byte(nil), o.Data...)}
		s.mu.Unlock()
		m.counts.localReads.Add(1)
		m.met.localReads.Inc()
		_ = m.bus.Reply(msg, types.MgrMemory, reply)
		return
	}
	dst := m.routeObjectLocked(s, p.Addr)
	s.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		_ = m.bus.ReplyErr(msg, types.MgrMemory, wire.ErrCodeNoSuchObject, p.Addr.String())
		return
	}
	_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemReplicaData{Found: true, Redirect: dst})
}

// handleHeatTransfer seeds the heat table for an object that just
// migrated here because of its write heat. Counts are capped at the
// decay window — they arrive off the wire and must not be trusted to
// be sane — and only applied while the object is resident, so a stale
// transfer cannot reheat an address that has already moved on.
func (m *Manager) handleHeatTransfer(p *wire.MemHeatTransfer) {
	n := len(p.Sites)
	if len(p.Heats) < n {
		n = len(p.Heats)
	}
	if n == 0 {
		return
	}
	s := m.shardFor(p.Addr)
	m.lockShard(s)
	defer s.mu.Unlock()
	if _, resident := s.objects[p.Addr]; !resident {
		return
	}
	h := s.heat[p.Addr]
	if h == nil {
		h = make(map[types.SiteID]uint32)
		s.heat[p.Addr] = h
	}
	for i := 0; i < n; i++ {
		id, c := p.Sites[i], p.Heats[i]
		if !id.Valid() || c == 0 {
			continue
		}
		if c > heatWindow {
			c = heatWindow
		}
		if h[id] += c; h[id] > heatWindow {
			h[id] = heatWindow
		}
	}
}

func (m *Manager) handleApplyParam(p *wire.ApplyParam) {
	s := m.shardFor(p.Dst.Addr)
	m.lockShard(s)
	if f, ok := s.frames[p.Dst.Addr]; ok {
		// Errors here are dataflow programming errors (double-filled
		// slot); they are counted but cannot be reported to the remote
		// sender meaningfully.
		_ = m.applyLocked(s, f, int(p.Dst.Slot), p.Data)
		s.mu.Unlock()
		return
	}
	if s.consumed[p.Dst.Addr] {
		s.mu.Unlock()
		return
	}
	dst := m.routeFrameLocked(s, p.Dst.Addr)
	s.mu.Unlock()

	if dst != types.InvalidSite && dst != m.bus.Self() {
		if err := m.bus.Send(dst, types.MgrMemory, types.MgrMemory, p); err == nil {
			return
		}
		// The forward target just left or crashed; fall through to the
		// retry path — routing will heal once relocation broadcasts or
		// crash recovery update the directories.
	}
	// Frame not here and not (reachably) known elsewhere: likely
	// in-flight. Retry shortly rather than dropping the parameter, but
	// give up after ~5s so dead programs cannot loop forever.
	m.lockShard(s)
	s.pendingRetries[p.Dst]++
	tries := s.pendingRetries[p.Dst]
	if tries > 100 {
		delete(s.pendingRetries, p.Dst)
	}
	s.mu.Unlock()
	if tries > 100 {
		return
	}
	dup := &wire.ApplyParam{Dst: p.Dst, Data: p.Data}
	time.AfterFunc(50*time.Millisecond, func() {
		_ = m.bus.Send(m.bus.Self(), types.MgrMemory, types.MgrMemory, dup)
	})
}

func (m *Manager) handleMemRead(msg *wire.Message, p *wire.MemRead) {
	s := m.shardFor(p.Addr)
	m.lockShard(s)
	if o, ok := s.objects[p.Addr]; ok {
		reply := &wire.MemReadReply{Found: true, Object: *o.Clone()}
		inv := getInvalidation()
		if p.Migrate {
			delete(s.objects, p.Addr)
			if p.Addr.Home == m.bus.Self() {
				s.objOwner[p.Addr] = msg.Src
			} else {
				// Transit hint: until the homesite directory catches
				// up, requests that still arrive here are forwarded to
				// the new owner instead of bouncing via the home.
				s.remap[p.Addr] = msg.Src
			}
			// Ownership moves: replicas keyed to this owner's copyset
			// are dropped (the new owner starts a fresh copyset), and
			// the heat table goes with the ownership role.
			inv.add(p.Addr, m.takeCopysetLocked(s, inv, p.Addr, msg.Src))
			delete(s.heat, p.Addr)
			s.mu.Unlock()
			m.counts.migrations.Add(1)
			m.met.migrations.Inc()
		} else {
			if m.cacheEnabled.Load() && msg.Src.Valid() && msg.Src != m.bus.Self() {
				cs, ok := s.copies[p.Addr]
				if !ok {
					cs = make(map[types.SiteID]bool)
					s.copies[p.Addr] = cs
				}
				cs[msg.Src] = true
			}
			s.mu.Unlock()
			m.counts.localReads.Add(1)
		}
		m.sendInvalidates(inv)
		_ = m.bus.Reply(msg, types.MgrMemory, reply)
		return
	}
	dst := m.routeObjectLocked(s, p.Addr)
	s.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		_ = m.bus.ReplyErr(msg, types.MgrMemory, wire.ErrCodeNoSuchObject, p.Addr.String())
		return
	}
	_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemReadReply{Found: true, Redirect: dst})
}

func (m *Manager) handleMemWrite(msg *wire.Message, p *wire.MemWrite) {
	s := m.shardFor(p.Addr)
	m.lockShard(s)
	if o, ok := s.objects[p.Addr]; ok {
		if !writeAt(o, int(p.Offset), p.Data) {
			s.mu.Unlock()
			_ = m.bus.ReplyErr(msg, types.MgrMemory, wire.ErrCodeGeneric, "memory: write out of bounds")
			return
		}
		inv := getInvalidation()
		// The writer itself is not skipped: it dropped its own replica
		// before writing through, but a concurrent reader on its site may
		// have re-installed one in the meantime — that copy is as stale
		// as anyone else's.
		inv.add(p.Addr, m.takeCopysetLocked(s, inv, p.Addr, types.InvalidSite))
		migrateTo := m.noteWriteLocked(s, p.Addr, msg.Src)
		s.mu.Unlock()
		m.counts.localWrites.Add(1)
		m.met.localWrites.Inc()
		if inv.empty() && migrateTo == types.InvalidSite {
			putInvalidation(inv)
			_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemWriteAck{OK: true})
			return
		}
		// Collect invalidation acks off the dispatcher, then ack the
		// writer: once the writer proceeds, no stale replica survives.
		// A heat-triggered push runs after the ack — placement is an
		// optimisation, not part of the write's consistency contract.
		go func() {
			m.sendInvalidates(inv)
			_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemWriteAck{OK: true})
			if migrateTo != types.InvalidSite {
				m.migrateHome(p.Addr, migrateTo)
			}
		}()
		return
	}
	dst := m.routeObjectLocked(s, p.Addr)
	s.mu.Unlock()

	if dst == types.InvalidSite || dst == m.bus.Self() {
		_ = m.bus.ReplyErr(msg, types.MgrMemory, wire.ErrCodeNoSuchObject, p.Addr.String())
		return
	}
	_ = m.bus.Reply(msg, types.MgrMemory, &wire.MemWriteAck{OK: false, Redirect: dst})
}

func (m *Manager) handleMigrate(p *wire.MemMigrate) {
	self := m.bus.Self()
	var updates []*wire.HomeUpdate
	for i := range p.Objects {
		o := p.Objects[i]
		s := m.shardFor(o.Addr)
		m.lockShard(s)
		s.objects[o.Addr] = &o
		s.purgeReplicaLocked(o.Addr)
		if o.Addr.Home == self {
			delete(s.objOwner, o.Addr) // we own it again
		} else {
			updates = append(updates, &wire.HomeUpdate{Addr: o.Addr, Owner: self})
		}
		s.mu.Unlock()
	}
	m.counts.migrations.Add(uint64(len(p.Objects)))
	m.met.migrations.Add(uint64(len(p.Objects)))

	for _, u := range updates {
		if !u.Addr.Home.Valid() {
			continue // corrupt migration payload: no directory to update
		}
		_ = m.bus.Send(u.Addr.Home, types.MgrMemory, types.MgrMemory, u)
	}
}

func (m *Manager) handleHomeUpdate(from types.SiteID, p *wire.HomeUpdate) {
	s := m.shardFor(p.Addr)
	m.lockShard(s)
	defer s.mu.Unlock()
	self := m.bus.Self()
	if p.Addr.Home == self {
		// Directory update for an address we created.
		if p.Owner == self {
			delete(s.objOwner, p.Addr)
			delete(s.frameOwner, p.Addr)
			return
		}
		if s.consumed[p.Addr] {
			return
		}
		// The address may name a frame or an object; record in both
		// directories (lookups check residency first, so a stale entry
		// in the wrong directory is harmless).
		if _, resident := s.objects[p.Addr]; !resident {
			if _, fresident := s.frames[p.Addr]; !fresident {
				s.objOwner[p.Addr] = p.Owner
				s.frameOwner[p.Addr] = p.Owner
			}
		}
		return
	}
	// Broadcast remap from an evacuating site.
	if _, resident := s.objects[p.Addr]; resident {
		return
	}
	if _, resident := s.frames[p.Addr]; resident {
		return
	}
	if p.Owner == self {
		return
	}
	s.remap[p.Addr] = p.Owner
}
