package memory

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

func randBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// TestShardedModelEquivalence is the coherence protocol's consistency
// harness. Two phases:
//
//   - sequential: a seeded random Alloc/Read/Write/Attract sequence from
//     both sites of a two-site cluster against a plain single-map
//     reference model, byte-for-byte, including after a full evacuation;
//   - histories: seeded concurrent histories on a three-site cluster.
//     Writers serialize per address and publish a monotonically
//     increasing sequence number; readers and attractors on every site
//     assert each observed value lies between the last committed write
//     (a stale read below this bound means a replica survived an
//     invalidation barrier) and the highest issued write, and never
//     travels backwards within one goroutine. After the history drains,
//     every site must read exactly the committed value — plain and
//     under -race, across 200 seeds.
func TestShardedModelEquivalence(t *testing.T) {
	t.Run("sequential", testModelEquivalenceSequential)
	t.Run("histories", func(t *testing.T) {
		iters := 200
		if testing.Short() {
			iters = 20
		}
		for i := 0; i < iters; i++ {
			consistencyHistory(t, int64(i)*31+42)
			if t.Failed() {
				t.Fatalf("history with seed %d failed", int64(i)*31+42)
			}
		}
	})
}

func testModelEquivalenceSequential(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	a, b := mems[0], mems[1]
	rng := rand.New(rand.NewSource(42))
	model := map[types.GlobalAddr][]byte{}
	var addrs []types.GlobalAddr

	site := func() *Manager {
		if rng.Intn(2) == 0 {
			return a
		}
		return b
	}

	const ops = 400
	for i := 0; i < ops; i++ {
		op := rng.Intn(10)
		switch {
		case op < 2 || len(addrs) == 0: // alloc
			data := randBytes(rng, 1+rng.Intn(32))
			addr := site().Alloc(prog(), data)
			model[addr] = append([]byte(nil), data...)
			addrs = append(addrs, addr)
		case op < 5: // write (possibly remote, possibly extending)
			addr := addrs[rng.Intn(len(addrs))]
			off := rng.Intn(len(model[addr]) + 4)
			data := randBytes(rng, 1+rng.Intn(16))
			if err := site().Write(addr, off, data); err != nil {
				t.Fatalf("op %d: write %v: %v", i, addr, err)
			}
			cur := model[addr]
			if need := off + len(data); need > len(cur) {
				grown := make([]byte, need)
				copy(grown, cur)
				cur = grown
			}
			copy(cur[off:], data)
			model[addr] = cur
		case op < 8: // read
			addr := addrs[rng.Intn(len(addrs))]
			got, err := site().Read(addr)
			if err != nil {
				t.Fatalf("op %d: read %v: %v", i, addr, err)
			}
			if !bytes.Equal(got, model[addr]) {
				t.Fatalf("op %d: read %v = %x, model %x", i, addr, got, model[addr])
			}
		default: // attract (ownership migration)
			addr := addrs[rng.Intn(len(addrs))]
			got, err := site().Attract(addr)
			if err != nil {
				t.Fatalf("op %d: attract %v: %v", i, addr, err)
			}
			if !bytes.Equal(got, model[addr]) {
				t.Fatalf("op %d: attract %v = %x, model %x", i, addr, got, model[addr])
			}
		}
	}

	// Drain site b; the survivor must then serve the whole model.
	if err := b.EvacuateTo(1); err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		got, err := a.Read(addr)
		if err != nil {
			t.Fatalf("post-evacuation read %v: %v", addr, err)
		}
		if !bytes.Equal(got, model[addr]) {
			t.Fatalf("post-evacuation read %v = %x, model %x", addr, got, model[addr])
		}
	}
}

// consistencyHistory replays one seeded concurrent read/write/migrate
// history against a three-site cluster and checks per-address
// sequential consistency. Writers hold a per-address mutex, so writes to
// one address are totally ordered; `issued` is advanced before Write
// starts and `committed` after Write returns, giving every concurrent
// read a correctness window: it may see any value a write has started
// publishing, but never one older than the last write whose
// invalidation barrier completed before the read began.
func consistencyHistory(t *testing.T, seed int64) {
	t.Helper()
	_, mems, _ := memCluster(t, 3)
	rng := rand.New(rand.NewSource(seed))

	const (
		numAddrs = 6
		workers  = 4
		opsEach  = 30
	)
	type addrState struct {
		mu        sync.Mutex
		issued    atomic.Uint64
		committed atomic.Uint64
	}
	addrs := make([]types.GlobalAddr, numAddrs)
	states := make([]*addrState, numAddrs)
	for i := range addrs {
		addrs[i] = mems[rng.Intn(len(mems))].Alloc(prog(), make([]byte, 8))
		states[i] = &addrState{}
	}

	// Pre-generate each worker's op stream single-threaded, so the RNG
	// stays deterministic; the schedule interleaving still varies, but
	// the invariants must hold under every interleaving.
	type op struct{ kind, site, addr int }
	plans := make([][]op, workers)
	for w := range plans {
		plans[w] = make([]op, opsEach)
		for i := range plans[w] {
			plans[w][i] = op{kind: rng.Intn(10), site: rng.Intn(len(mems)), addr: rng.Intn(numAddrs)}
		}
	}

	var (
		wg     sync.WaitGroup
		failMu sync.Mutex
		fails  []string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		failMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// lastSeen is keyed per (addr, site): while a write's
			// invalidation barrier is still in flight, the owner already
			// serves the new value but a replica elsewhere may serve the
			// old one, so cross-site observations only become comparable
			// once the write commits (the lo bound). Within one site,
			// values must never go backwards.
			lastSeen := make([]uint64, numAddrs*len(mems))
			check := func(what string, idx, site int, data []byte, lo, hi uint64) {
				v := binary.BigEndian.Uint64(data)
				if v < lo {
					fail("worker %d: stale %s of %v: seq %d, but %d was committed before the %s began",
						w, what, addrs[idx], v, lo, what)
				}
				if v > hi {
					fail("worker %d: phantom %s of %v: seq %d, but only %d was ever issued", w, what, addrs[idx], v, hi)
				}
				k := idx*len(mems) + site
				if v < lastSeen[k] {
					fail("worker %d: %s of %v at site %d went backwards: %d after %d",
						w, what, addrs[idx], site+1, v, lastSeen[k])
				}
				lastSeen[k] = v
			}
			for _, o := range plans[w] {
				st, m := states[o.addr], mems[o.site]
				switch {
				case o.kind < 4: // write the next sequence value
					st.mu.Lock()
					seq := st.issued.Load() + 1
					st.issued.Store(seq)
					var buf [8]byte
					binary.BigEndian.PutUint64(buf[:], seq)
					err := m.Write(addrs[o.addr], 0, buf[:])
					if err == nil {
						st.committed.Store(seq)
					}
					st.mu.Unlock()
					if err != nil {
						fail("worker %d: write %v: %v", w, addrs[o.addr], err)
						return
					}
				case o.kind < 9: // read
					lo := st.committed.Load()
					data, err := m.Read(addrs[o.addr])
					if err != nil {
						fail("worker %d: read %v: %v", w, addrs[o.addr], err)
						return
					}
					check("read", o.addr, o.site, data, lo, st.issued.Load())
				default: // attract: ownership migration mid-history
					lo := st.committed.Load()
					data, err := m.Attract(addrs[o.addr])
					if err != nil {
						fail("worker %d: attract %v: %v", w, addrs[o.addr], err)
						return
					}
					check("attract", o.addr, o.site, data, lo, st.issued.Load())
				}
			}
		}(w)
	}
	wg.Wait()
	for _, f := range fails {
		t.Errorf("seed %d: %s", seed, f)
	}
	if t.Failed() {
		return
	}

	// Quiescent: every write has returned, so its invalidation barrier
	// completed. Every site must now read exactly the committed value;
	// anything less is a replica that survived an invalidation.
	for idx, addr := range addrs {
		want := states[idx].committed.Load()
		for si, m := range mems {
			data, err := m.Read(addr)
			if err != nil {
				t.Fatalf("seed %d: quiescent read %v at site %d: %v", seed, addr, si+1, err)
			}
			if v := binary.BigEndian.Uint64(data); v != want {
				t.Fatalf("seed %d: quiescent read %v at site %d = seq %d, want %d (stale replica survived the barrier)",
					seed, addr, si+1, v, want)
			}
		}
	}

	// Graceful sign-off: drain the third site; survivors must still
	// agree (evacuation flushes its copysets and re-homes its objects).
	if err := mems[2].EvacuateTo(1); err != nil {
		t.Fatalf("seed %d: evacuate: %v", seed, err)
	}
	for idx, addr := range addrs {
		want := states[idx].committed.Load()
		for si, m := range mems[:2] {
			data, err := m.Read(addr)
			if err != nil {
				t.Fatalf("seed %d: post-evacuation read %v at site %d: %v", seed, addr, si+1, err)
			}
			if v := binary.BigEndian.Uint64(data); v != want {
				t.Fatalf("seed %d: post-evacuation read %v at site %d = seq %d, want %d",
					seed, addr, si+1, v, want)
			}
		}
	}
}

// TestShardedConcurrentStress hammers one manager from many goroutines:
// partitioned writers bump per-address counters while readers assert the
// values never go backwards, and a dataflow mix of frames fires
// alongside. Run under -race this is the sharding's main safety net.
func TestShardedConcurrentStress(t *testing.T) {
	_, mems, fires := memCluster(t, 1)
	m := mems[0]

	const (
		writers   = 8
		perWriter = 16
		rounds    = 40
	)
	addrs := make([]types.GlobalAddr, writers*perWriter)
	for i := range addrs {
		addrs[i] = m.Alloc(prog(), make([]byte, 8))
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		mine := addrs[w*perWriter : (w+1)*perWriter]
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for r := 1; r <= rounds; r++ {
				for _, addr := range mine {
					binary.BigEndian.PutUint64(buf, uint64(r))
					if err := m.Write(addr, 0, buf); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Readers assert per-address monotonicity: a counter that decreases
	// means a lost or reordered write inside the sharded state.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			last := map[types.GlobalAddr]uint64{}
			for i := 0; i < writers*perWriter*rounds/4; i++ {
				addr := addrs[rng.Intn(len(addrs))]
				got, err := m.Read(addr)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				v := binary.BigEndian.Uint64(got)
				if v < last[addr] {
					t.Errorf("read of %v went backwards: %d after %d", addr, v, last[addr])
					return
				}
				last[addr] = v
			}
		}(int64(r) + 7)
	}
	// Dataflow mix: frames created and completed concurrently with the
	// object traffic must all fire exactly once.
	const frames = 64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			id := m.NewFrame(thread(uint32(1000+i)), 1, types.PriorityNormal, 0)
			if err := m.Send(wire.Target{Addr: id, Slot: 0}, []byte{1}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := fires[0].count(); got != frames {
		t.Fatalf("%d frames fired, want %d", got, frames)
	}
	for i, addr := range addrs {
		got, err := m.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.BigEndian.Uint64(got); v != rounds {
			t.Fatalf("addr %d final counter = %d, want %d", i, v, rounds)
		}
	}
	t.Logf("shard contention under stress: %d", m.Stats().ShardContention)
}

// TestShardDistribution pins the shardFor hash: sequentially allocated
// addresses (the overwhelmingly common pattern) must spread across all
// shards instead of clustering, or the sharding buys nothing.
func TestShardDistribution(t *testing.T) {
	m := &Manager{}
	counts := map[*memShard]int{}
	const n = 1 << 10
	for i := uint64(1); i <= n; i++ {
		counts[m.shardFor(types.GlobalAddr{Home: 1, Local: i})]++
	}
	if len(counts) != shardCount {
		t.Fatalf("%d shards used, want %d", len(counts), shardCount)
	}
	for s, c := range counts {
		// Perfectly uniform would be n/shardCount; allow 2x skew.
		if c > 2*n/shardCount {
			t.Fatalf("shard %p got %d of %d addresses", s, c, n)
		}
	}
}

// TestReclaimGrantsIsExclusiveWithCrashReplay pins the hand-back the
// scheduler uses when a help reply bounces off a departed requester:
// reclaimed frames leave the grant log, so a later crash declaration
// for the same grantee replays only what was never taken back — each
// frame re-enters the dataflow exactly once.
func TestReclaimGrantsIsExclusiveWithCrashReplay(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	granter := mems[0]

	const n = 6
	var ids []types.FrameID
	for i := 0; i < n; i++ {
		id := granter.NewFrame(thread(uint32(i)), 1, types.PriorityNormal, 0)
		f, ok := granter.TakeFrame(id)
		if !ok {
			t.Fatalf("frame %v not resident", id)
		}
		granter.RecordGrant(2, f)
		ids = append(ids, id)
	}

	back := granter.ReclaimGrants(2, ids[:3])
	if len(back) != 3 {
		t.Fatalf("reclaimed %d frames, want 3", len(back))
	}
	got := map[types.FrameID]bool{}
	for _, f := range back {
		got[f.ID] = true
	}
	for _, id := range ids[:3] {
		if !got[id] {
			t.Fatalf("frame %v missing from the reclaimed set", id)
		}
	}

	// The crash declaration replays only the half still in the log.
	granter.OnSiteCrashed(2, nil)
	if c := granter.FrameCount(); c != 3 {
		t.Fatalf("%d frames replayed after partial reclaim, want 3", c)
	}
	// And nothing is left to reclaim: the log entry was consumed.
	if rest := granter.ReclaimGrants(2, ids); len(rest) != 0 {
		t.Fatalf("%d frames reclaimed from a consumed log", len(rest))
	}
}

// TestBatchGrantSurvivesGranterCrash models a batched help-grant: N
// frames handed to one peer in a single reply, logged individually, all
// re-injected into the local dataflow when that peer is declared dead.
func TestBatchGrantSurvivesGranterCrash(t *testing.T) {
	_, mems, fires := memCluster(t, 2)
	granter := mems[0]

	const n = 8
	var ids []types.FrameID
	for i := 0; i < n; i++ {
		id := granter.NewFrame(thread(uint32(i)), 1, types.PriorityNormal, 0)
		f, ok := granter.TakeFrame(id)
		if !ok {
			t.Fatalf("frame %v not resident", id)
		}
		granter.RecordGrant(2, f)
		ids = append(ids, id)
	}
	if got := granter.FrameCount(); got != 0 {
		t.Fatalf("%d frames still resident after grant", got)
	}

	granter.OnSiteCrashed(2, nil)
	if got := granter.FrameCount(); got != n {
		t.Fatalf("%d frames recovered from grant log, want %d", got, n)
	}

	// Completing the recovered frames fires each exactly once.
	for _, id := range ids {
		if err := granter.Send(wire.Target{Addr: id, Slot: 0}, []byte{9}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for fires[0].count() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fires[0].count(); got != n {
		t.Fatalf("%d recovered frames fired, want %d", got, n)
	}
	// A second crash notice must not duplicate anything: the log was
	// consumed by the first replay.
	granter.OnSiteCrashed(2, nil)
	if got := granter.FrameCount(); got != 0 {
		t.Fatalf("%d frames after duplicate crash notice, want 0", got)
	}
}
