package memory

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/testnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// fireCollector gathers fired frames.
type fireCollector struct {
	mu     sync.Mutex
	frames []*wire.Microframe
	ch     chan *wire.Microframe
}

func newFireCollector() *fireCollector {
	return &fireCollector{ch: make(chan *wire.Microframe, 256)}
}

func (c *fireCollector) fire(f *wire.Microframe) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
	select {
	case c.ch <- f:
	default:
		// The channel is a convenience for tests that wait on a single
		// fire; high-volume tests read c.frames instead. Fire callbacks
		// must never block (the attraction memory calls them inline).
	}
}

func (c *fireCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// memCluster builds n sites each carrying an attraction memory.
func memCluster(t *testing.T, n int) ([]*testnet.Node, []*Manager, []*fireCollector) {
	t.Helper()
	mems := make([]*Manager, n)
	fires := make([]*fireCollector, n)
	nodes := testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		fires[i] = newFireCollector()
		mems[i] = New(node.Bus, fires[i].fire)
	})
	return nodes, mems, fires
}

func prog() types.ProgramID { return types.MakeProgramID(1, 1) }

func thread(idx uint32) types.ThreadID { return types.ThreadID{Program: prog(), Index: idx} }

func TestAllocReadWriteLocal(t *testing.T) {
	_, mems, _ := memCluster(t, 1)
	m := mems[0]

	addr := m.Alloc(prog(), []byte("hello"))
	got, err := m.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Read = %q", got)
	}
	if err := m.Write(addr, 0, []byte("H")); err != nil {
		t.Fatal(err)
	}
	got, _ = m.Read(addr)
	if string(got) != "Hello" {
		t.Fatalf("after write, Read = %q", got)
	}
	// Write past the end extends the object.
	if err := m.Write(addr, 5, []byte("!!")); err != nil {
		t.Fatal(err)
	}
	got, _ = m.Read(addr)
	if string(got) != "Hello!!" {
		t.Fatalf("after extend, Read = %q", got)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	_, mems, _ := memCluster(t, 1)
	m := mems[0]
	addr := m.Alloc(prog(), []byte{1, 2, 3})
	got, _ := m.Read(addr)
	got[0] = 99
	again, _ := m.Read(addr)
	if again[0] != 1 {
		t.Fatal("Read result aliases the stored object")
	}
}

func TestRemoteReadViaHomesite(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	a, b := mems[0], mems[1]

	addr := a.Alloc(prog(), []byte("remote data"))
	got, err := b.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "remote data" {
		t.Fatalf("remote Read = %q", got)
	}
	// The object stays with its owner on a plain read.
	if a.ObjectCount() != 1 || b.ObjectCount() != 0 {
		t.Fatalf("ownership moved on read: a=%d b=%d", a.ObjectCount(), b.ObjectCount())
	}
}

func TestRemoteWriteInPlace(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	a, b := mems[0], mems[1]
	addr := a.Alloc(prog(), []byte("xxxx"))
	if err := b.Write(addr, 1, []byte("YZ")); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Read(addr)
	if string(got) != "xYZx" {
		t.Fatalf("after remote write, owner sees %q", got)
	}
}

func TestAttractMigratesOwnership(t *testing.T) {
	nodes, mems, _ := memCluster(t, 3)
	a, b, c := mems[0], mems[1], mems[2]

	addr := a.Alloc(prog(), []byte("migrant"))
	got, err := b.Attract(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "migrant" {
		t.Fatalf("Attract = %q", got)
	}
	testnet.WaitFor(t, "ownership moved to b", func() bool {
		return a.ObjectCount() == 0 && b.ObjectCount() == 1
	})

	// c reads via the homesite directory: a must redirect to b.
	got, err = c.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "migrant" {
		t.Fatalf("read after migration = %q", got)
	}

	// And writes from a (the homesite itself) follow the directory too.
	if err := a.Write(addr, 0, []byte("M")); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Read(addr)
	if string(got) != "Migrant" {
		t.Fatalf("read after homesite write = %q", got)
	}
	_ = nodes
}

func TestAttractChain(t *testing.T) {
	// Object hops a -> b -> c; the directory must follow.
	_, mems, _ := memCluster(t, 3)
	a, b, c := mems[0], mems[1], mems[2]
	addr := a.Alloc(prog(), []byte("hop"))
	if _, err := b.Attract(addr); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "b owns", func() bool { return b.ObjectCount() == 1 })
	if _, err := c.Attract(addr); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "c owns", func() bool { return c.ObjectCount() == 1 && b.ObjectCount() == 0 })
	got, err := a.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hop" {
		t.Fatalf("Read = %q", got)
	}
}

func TestReadUnknownObject(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	bogus := types.GlobalAddr{Home: 1, Local: 9999}
	if _, err := mems[1].Read(bogus); !errors.Is(err, types.ErrNoSuchObject) {
		t.Fatalf("Read unknown = %v", err)
	}
	if err := mems[1].Write(bogus, 0, []byte("x")); !errors.Is(err, types.ErrNoSuchObject) {
		t.Fatalf("Write unknown = %v", err)
	}
}

func TestZeroArityFrameFiresImmediately(t *testing.T) {
	_, mems, fires := memCluster(t, 1)
	id := mems[0].NewFrame(thread(1), 0, types.PriorityNormal, 0)
	f := <-fires[0].ch
	if f.ID != id || f.Thread != thread(1) {
		t.Fatalf("fired frame = %v", f)
	}
}

func TestLocalDataflowFiring(t *testing.T) {
	_, mems, fires := memCluster(t, 1)
	m := mems[0]
	id := m.NewFrame(thread(7), 2, types.PriorityNormal, 0)

	if err := m.Send(wire.Target{Addr: id, Slot: 0}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if fires[0].count() != 0 {
		t.Fatal("frame fired before all parameters arrived")
	}
	if err := m.Send(wire.Target{Addr: id, Slot: 1}, []byte("b")); err != nil {
		t.Fatal(err)
	}
	f := <-fires[0].ch
	if !f.Executable() {
		t.Fatal("fired frame not executable")
	}
	if string(f.Params[0]) != "a" || string(f.Params[1]) != "b" {
		t.Fatalf("params = %q %q", f.Params[0], f.Params[1])
	}
	if m.FrameCount() != 0 {
		t.Fatal("consumed frame still stored")
	}
}

func TestRemoteDataflowFiring(t *testing.T) {
	_, mems, fires := memCluster(t, 2)
	a, b := mems[0], mems[1]
	id := a.NewFrame(thread(3), 2, types.PriorityNormal, 0)

	// Both parameters arrive from the remote site b.
	if err := b.Send(wire.Target{Addr: id, Slot: 1}, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(wire.Target{Addr: id, Slot: 0}, []byte("first")); err != nil {
		t.Fatal(err)
	}
	f := <-fires[0].ch
	if string(f.Params[0]) != "first" || string(f.Params[1]) != "second" {
		t.Fatalf("params = %q %q", f.Params[0], f.Params[1])
	}
	if fires[1].count() != 0 {
		t.Fatal("frame fired on the wrong site")
	}
}

func TestFrameFiresExactlyOnce(t *testing.T) {
	_, mems, fires := memCluster(t, 1)
	m := mems[0]
	id := m.NewFrame(thread(1), 1, types.PriorityNormal, 0)
	if err := m.Send(wire.Target{Addr: id, Slot: 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	<-fires[0].ch
	// A second application must fail, not re-fire.
	err := m.Send(wire.Target{Addr: id, Slot: 0}, []byte("y"))
	if !errors.Is(err, types.ErrNoSuchFrame) {
		t.Fatalf("second apply = %v", err)
	}
	if fires[0].count() != 1 {
		t.Fatalf("fired %d times", fires[0].count())
	}
}

func TestDoubleSlotRejected(t *testing.T) {
	_, mems, _ := memCluster(t, 1)
	m := mems[0]
	id := m.NewFrame(thread(1), 2, types.PriorityNormal, 0)
	if err := m.Send(wire.Target{Addr: id, Slot: 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(wire.Target{Addr: id, Slot: 0}, []byte("y")); !errors.Is(err, types.ErrSlotFilled) {
		t.Fatalf("double slot = %v", err)
	}
}

func TestFrameMigrationReroutesParameters(t *testing.T) {
	_, mems, fires := memCluster(t, 3)
	a, b, c := mems[0], mems[1], mems[2]

	// Frame homed at a, with one of two params filled.
	id := a.NewFrame(thread(9), 2, types.PriorityNormal, 0)
	if err := a.Send(wire.Target{Addr: id, Slot: 0}, []byte("early")); err != nil {
		t.Fatal(err)
	}

	// Migrate the waiting frame to b (as a sign-off or load-balancing
	// decision would).
	f, ok := a.TakeFrame(id)
	if !ok {
		t.Fatal("TakeFrame failed")
	}
	b.AdoptFrame(f)
	testnet.WaitFor(t, "b holds the frame", func() bool { return b.FrameCount() == 1 })

	// The last parameter, sent from c, must find the frame at b (via
	// the homesite directory at a) and fire it there.
	if err := c.Send(wire.Target{Addr: id, Slot: 1}, []byte("late")); err != nil {
		t.Fatal(err)
	}
	fired := <-fires[1].ch
	if string(fired.Params[0]) != "early" || string(fired.Params[1]) != "late" {
		t.Fatalf("params = %q %q", fired.Params[0], fired.Params[1])
	}
	if fires[0].count() != 0 || fires[2].count() != 0 {
		t.Fatal("frame fired on the wrong site")
	}
}

func TestEvacuateMovesEverything(t *testing.T) {
	_, mems, fires := memCluster(t, 3)
	a, b, c := mems[0], mems[1], mems[2]

	addr := b.Alloc(prog(), []byte("payload"))
	id := b.NewFrame(thread(2), 2, types.PriorityNormal, 0)
	if err := b.Send(wire.Target{Addr: id, Slot: 0}, []byte("p0")); err != nil {
		t.Fatal(err)
	}

	// b leaves: everything moves to c.
	if err := b.EvacuateTo(c.bus.Self()); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "c adopted state", func() bool {
		return c.ObjectCount() == 1 && c.FrameCount() == 1
	})

	// Data remains reachable from a.
	got, err := a.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("Read after evacuation = %q", got)
	}

	// The waiting frame still fires when its last parameter arrives.
	if err := a.Send(wire.Target{Addr: id, Slot: 1}, []byte("p1")); err != nil {
		t.Fatal(err)
	}
	fired := <-fires[2].ch
	if !bytes.Equal(fired.Params[0], []byte("p0")) || !bytes.Equal(fired.Params[1], []byte("p1")) {
		t.Fatalf("params after evacuation = %q %q", fired.Params[0], fired.Params[1])
	}
}

func TestSnapshotAndRestore(t *testing.T) {
	_, mems, fires := memCluster(t, 2)
	a, b := mems[0], mems[1]

	addr := a.Alloc(prog(), []byte("state"))
	id := a.NewFrame(thread(4), 2, types.PriorityNormal, 0)
	if err := a.Send(wire.Target{Addr: id, Slot: 0}, []byte("half")); err != nil {
		t.Fatal(err)
	}

	frames, objects := a.Snapshot(prog())
	if len(frames) != 1 || len(objects) != 1 {
		t.Fatalf("snapshot: %d frames, %d objects", len(frames), len(objects))
	}

	// Restore on b (as crash recovery would after a died).
	b.Restore(frames, objects)
	testnet.WaitFor(t, "b restored", func() bool {
		return b.ObjectCount() == 1 && b.FrameCount() == 1
	})
	_ = addr

	// Completing the restored frame fires it on b.
	if err := b.Send(wire.Target{Addr: id, Slot: 1}, []byte("done")); err != nil {
		t.Fatal(err)
	}
	<-fires[1].ch
}

func TestSnapshotIsolatesPrograms(t *testing.T) {
	_, mems, _ := memCluster(t, 1)
	m := mems[0]
	p2 := types.MakeProgramID(1, 2)
	m.Alloc(prog(), []byte("p1"))
	m.Alloc(p2, []byte("p2"))
	m.NewFrame(thread(1), 1, types.PriorityNormal, 0)
	m.NewFrame(types.ThreadID{Program: p2, Index: 1}, 1, types.PriorityNormal, 0)

	f1, o1 := m.Snapshot(prog())
	if len(f1) != 1 || len(o1) != 1 {
		t.Fatalf("snapshot(p1): %d frames %d objects", len(f1), len(o1))
	}
}

func TestDropProgram(t *testing.T) {
	_, mems, _ := memCluster(t, 1)
	m := mems[0]
	p2 := types.MakeProgramID(1, 2)
	m.Alloc(prog(), []byte("p1"))
	m.Alloc(p2, []byte("p2"))
	m.NewFrame(thread(1), 1, types.PriorityNormal, 0)
	m.NewFrame(types.ThreadID{Program: p2, Index: 1}, 1, types.PriorityNormal, 0)

	m.DropProgram(prog())
	if m.FrameCount() != 1 || m.ObjectCount() != 1 {
		t.Fatalf("after drop: %d frames %d objects", m.FrameCount(), m.ObjectCount())
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, mems, fires := memCluster(t, 1)
	m := mems[0]
	m.Alloc(prog(), nil)
	id := m.NewFrame(thread(1), 1, types.PriorityNormal, 0)
	if err := m.Send(wire.Target{Addr: id, Slot: 0}, nil); err != nil {
		t.Fatal(err)
	}
	<-fires[0].ch
	s := m.Stats()
	if s.Allocs != 1 || s.ParamsApplied != 1 || s.FramesFired != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentSendsToManyFrames(t *testing.T) {
	_, mems, fires := memCluster(t, 2)
	a, b := mems[0], mems[1]

	const n = 100
	ids := make([]types.FrameID, n)
	for i := range ids {
		ids[i] = a.NewFrame(thread(uint32(i)), 2, types.PriorityNormal, 0)
	}
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.Send(wire.Target{Addr: ids[i], Slot: 0}, []byte{1}); err != nil {
				t.Errorf("local send %d: %v", i, err)
			}
			if err := b.Send(wire.Target{Addr: ids[i], Slot: 1}, []byte{2}); err != nil {
				t.Errorf("remote send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		<-fires[0].ch
	}
	if a.FrameCount() != 0 {
		t.Fatalf("%d frames left", a.FrameCount())
	}
}

func TestReadReplicationCachesAndInvalidates(t *testing.T) {
	// COMA read replication (paper §4: objects "migrate or even be
	// copied to other sites"): a second read is served locally; a write
	// at the owner invalidates the replica before the writer proceeds.
	_, mems, _ := memCluster(t, 2)
	owner, reader := mems[0], mems[1]

	addr := owner.Alloc(prog(), []byte("v1"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	before := reader.Stats()
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	after := reader.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("second read missed the replica: %+v -> %+v", before, after)
	}
	if after.RemoteReads != before.RemoteReads {
		t.Fatal("second read went remote despite a replica")
	}

	// The owner writes; after Write returns, the replica must be gone
	// and the next read must observe the new value.
	if err := owner.Write(addr, 0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("stale read after invalidation: %q", got)
	}
	if reader.Stats().Invalidates == 0 {
		t.Fatal("invalidation not counted")
	}
}

func TestReadReplicationRemoteWriterInvalidates(t *testing.T) {
	// Writer and replica holder are different non-owner sites.
	_, mems, _ := memCluster(t, 3)
	owner, reader, writer := mems[0], mems[1], mems[2]

	addr := owner.Alloc(prog(), []byte("old"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	if err := writer.Write(addr, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("replica survived a remote write: %q", got)
	}
}

func TestReadReplicationDisabled(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	owner, reader := mems[0], mems[1]
	reader.SetReadReplication(false)

	addr := owner.Alloc(prog(), []byte("x"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	s := reader.Stats()
	if s.CacheHits != 0 {
		t.Fatal("cache hit although replication disabled")
	}
	if s.RemoteReads != 2 {
		t.Fatalf("RemoteReads = %d, want 2", s.RemoteReads)
	}
}

func TestMigrationDropsReplicas(t *testing.T) {
	// When ownership migrates, old replicas keyed to the old owner's
	// copyset are invalidated; reads after a post-migration write see
	// the new value.
	_, mems, _ := memCluster(t, 3)
	a, b, c := mems[0], mems[1], mems[2]

	addr := a.Alloc(prog(), []byte("one"))
	if _, err := c.Read(addr); err != nil { // c holds a replica
		t.Fatal(err)
	}
	if _, err := b.Attract(addr); err != nil { // ownership a -> b
		t.Fatal(err)
	}
	if err := b.Write(addr, 0, []byte("two")); err != nil {
		t.Fatal(err)
	}
	// c must observe the write; its pre-migration replica is stale.
	testnet.WaitFor(t, "replica invalidated after migration", func() bool {
		got, err := c.Read(addr)
		return err == nil && string(got) == "two"
	})
}

func TestOwnerLocalWriteInvalidatesBeforeReturn(t *testing.T) {
	_, mems, fires := memCluster(t, 2)
	owner, reader := mems[0], mems[1]
	_ = fires
	addr := owner.Alloc(prog(), []byte("aaaa"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	if err := owner.Write(addr, 2, []byte("ZZ")); err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaZZ" {
		t.Fatalf("read after owner write = %q", got)
	}
}

// ---------------------------------------------------------------------------
// Replica coherence: crash purges, fetch poisoning, evacuation flush,
// heat-driven home migration.

func TestReplicaPurgeOnCrash(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	owner, reader := mems[0], mems[1]

	addr := owner.Alloc(prog(), []byte("warm"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	if reader.Stats().ReplicaHits == 0 {
		t.Fatal("second read was not served from the replica")
	}

	// The owner is declared crashed: bytes it served may predate the
	// checkpoint recovery restores from, so the replica must go.
	reader.OnSiteCrashed(1, nil)
	if reader.Stats().ReplicaInvals == 0 {
		t.Fatal("crash purge not counted in ReplicaInvals")
	}
	s := reader.shardFor(addr)
	reader.lockShard(s)
	_, cached := s.readCache[addr]
	s.mu.Unlock()
	if cached {
		t.Fatal("replica survived the owner's crash declaration")
	}
}

func TestReplicaCopysetPurgeOnCrash(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	owner, reader := mems[0], mems[1]

	addr := owner.Alloc(prog(), []byte("tracked"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}
	s := owner.shardFor(addr)
	owner.lockShard(s)
	registered := s.copies[addr][2]
	s.mu.Unlock()
	if !registered {
		t.Fatal("reader never entered the owner's copyset")
	}

	// The reader departs; if it lingered in the copyset, every future
	// write would wait out the invalidation deadline for an ack that can
	// never come.
	owner.DropSiteReplicas(2)
	owner.lockShard(s)
	_, still := s.copies[addr]
	s.mu.Unlock()
	if still {
		t.Fatal("departed site still in the owner's copyset")
	}
}

func TestReplicaFetchPoisoning(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	reader := mems[1]
	addr := mems[0].Alloc(prog(), []byte("inflight"))

	s := reader.shardFor(addr)
	st := &fetchState{done: make(chan struct{})}
	reader.lockShard(s)
	s.fetching[addr] = st
	s.mu.Unlock()

	// An invalidation landing mid-fetch must poison the in-flight fetch
	// so its (possibly pre-write) result is never installed as a replica.
	reader.dropReplicas(addr)

	reader.lockShard(s)
	poisoned := st.poisoned
	delete(s.fetching, addr)
	s.mu.Unlock()
	close(st.done)
	if !poisoned {
		t.Fatal("in-flight fetch not poisoned by the invalidation")
	}
}

func TestReplicaFlushOnEvacuation(t *testing.T) {
	_, mems, _ := memCluster(t, 3)
	owner, successor, reader := mems[0], mems[1], mems[2]

	addr := owner.Alloc(prog(), []byte("old"))
	if _, err := reader.Read(addr); err != nil {
		t.Fatal(err)
	}

	// Sign-off flushes the copyset with acks, so the reader's replica is
	// gone by the time EvacuateTo returns — not eventually, now.
	if err := owner.EvacuateTo(2); err != nil {
		t.Fatal(err)
	}
	s := reader.shardFor(addr)
	reader.lockShard(s)
	_, cached := s.readCache[addr]
	s.mu.Unlock()
	if cached {
		t.Fatal("replica survived the owner's evacuation")
	}

	if err := successor.Write(addr, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("read after evacuation + write = %q, want %q", got, "new")
	}
}

func TestHeatMigrationMovesHome(t *testing.T) {
	_, mems, _ := memCluster(t, 2)
	home, writer := mems[0], mems[1]

	addr := home.Alloc(prog(), []byte{0})
	// A remote writer that dominates the address's traffic pulls the
	// home to itself once it crosses the heat threshold. Exactly
	// heatMigrateMin writes suffice when nobody else writes at all.
	for i := 0; i < heatMigrateMin; i++ {
		if err := writer.Write(addr, 0, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	testnet.WaitFor(t, "object pushed to the dominant writer", func() bool {
		return writer.ObjectCount() == 1 && home.ObjectCount() == 0
	})
	if home.Stats().HomeMigrations == 0 {
		t.Fatal("home migration not counted")
	}

	// The heat table travels with the object: with no further writes
	// issued, heat at the new owner can only come from the transfer.
	testnet.WaitFor(t, "heat table travelled with the object", func() bool {
		s := writer.shardFor(addr)
		writer.lockShard(s)
		n := s.heat[addr][2]
		s.mu.Unlock()
		return n > 0
	})

	// Writes land locally at the new owner now, and the old home still
	// observes them through the directory.
	before := writer.Stats().LocalWrites
	if err := writer.Write(addr, 0, []byte("Z")); err != nil {
		t.Fatal(err)
	}
	if writer.Stats().LocalWrites != before+1 {
		t.Fatal("write after migration did not land locally")
	}
	got, err := home.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'Z' {
		t.Fatalf("old home reads %v after migration write", got)
	}
}
