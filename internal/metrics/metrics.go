// Package metrics is a small, stdlib-only registry of counters, gauges and
// fixed-bucket histograms. One Registry lives on each daemon; managers hold
// direct pointers to their instruments so the hot paths are a single atomic
// op with no map lookup and no lock.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and all
// instrument methods are no-ops on a nil receiver. A daemon built without
// metrics therefore pays only a pointer-nil branch per event, mirroring the
// trace.Tracer convention.
//
// Snapshots copy the current values under the registry lock so readers never
// observe a torn histogram, and the wire/HTTP exposition layers work from the
// copy alone.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current count (0 on a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts duration observations into fixed buckets. Bounds are
// inclusive upper limits; one extra overflow bucket catches everything
// beyond the last bound. Observation is lock-free.
type Histogram struct {
	bounds []time.Duration // immutable after construction
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// DefaultLatencyBounds covers the microsecond-to-second range the SDVM
// control plane operates in.
var DefaultLatencyBounds = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on a nil histogram).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Sample is one named value in a snapshot. Histograms flatten into several
// samples: <name>.count, <name>.sum_ns and one <name>.le.<bound> per bucket
// (plus <name>.gt.<last bound> for the overflow bucket), so samples from
// different sites merge by summing values with equal names.
type Sample struct {
	Name  string
	Value int64
}

// Registry owns the instruments of one daemon. The zero value is not usable;
// call NewRegistry. A nil *Registry is valid everywhere and disables
// collection.
type Registry struct {
	mu sync.Mutex
	// counters maps name to instrument. guarded by mu
	counters map[string]*Counter
	// gauges maps name to instrument. guarded by mu
	gauges map[string]*Gauge
	// hists maps name to instrument. guarded by mu
	hists map[string]*Histogram
	// gaugeFns holds callback gauges, read at snapshot time. guarded by mu
	gaugeFns map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (bounds of an existing histogram are kept). Passing
// nil bounds uses DefaultLatencyBounds. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]time.Duration, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a callback evaluated at snapshot time, for values that
// are cheaper to compute on demand than to track (queue depths, map sizes).
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = f
}

// Snapshot copies every instrument into a flat, name-sorted sample list.
// Returns nil on a nil registry.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+8*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: int64(c.Load())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: g.Load()})
	}
	type fn struct {
		name string
		f    func() int64
	}
	fns := make([]fn, 0, len(r.gaugeFns))
	for name, f := range r.gaugeFns {
		fns = append(fns, fn{name, f})
	}
	for name, h := range r.hists {
		out = append(out, Sample{Name: name + ".count", Value: int64(h.count.Load())})
		out = append(out, Sample{Name: name + ".sum_ns", Value: h.sum.Load()})
		for i, b := range h.bounds {
			out = append(out, Sample{Name: name + ".le." + b.String(), Value: int64(h.counts[i].Load())})
		}
		out = append(out, Sample{
			Name:  name + ".gt." + h.bounds[len(h.bounds)-1].String(),
			Value: int64(h.counts[len(h.bounds)].Load()),
		})
	}
	r.mu.Unlock()
	// Callback gauges run outside the registry lock: they typically take a
	// manager lock of their own and must not nest under ours.
	for _, f := range fns {
		out = append(out, Sample{Name: f.name, Value: f.f()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Merge sums samples into dst by name. Counters and histogram buckets add
// up across sites; summed gauges read as cluster totals (e.g. total queued
// frames).
func Merge(dst map[string]int64, samples []Sample) {
	for _, s := range samples {
		dst[s.Name] += s.Value
	}
}
