package metrics

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry snapshot as a flat JSON object, expvar-style:
// {"name": value, ...}. A nil registry serves an empty object, so the
// endpoint can be mounted unconditionally.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		flat := make(map[string]int64)
		Merge(flat, r.Snapshot())
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(flat) // best effort: the client may hang up mid-write
	})
}
