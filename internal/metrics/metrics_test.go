package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(time.Second)
	r.GaugeFunc("d", func() int64 { return 1 })
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("msgs") != c {
		t.Fatal("same name should return same counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond}
	h := r.Histogram("lat", bounds)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	want := 500*time.Microsecond + time.Millisecond + 2*time.Millisecond + time.Second
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	flat := make(map[string]int64)
	Merge(flat, r.Snapshot())
	if flat["lat.le.1ms"] != 2 || flat["lat.le.10ms"] != 1 || flat["lat.gt.10ms"] != 1 {
		t.Fatalf("bucket counts wrong: %v", flat)
	}
	if flat["lat.count"] != 4 {
		t.Fatalf("lat.count = %d, want 4", flat["lat.count"])
	}
}

func TestSnapshotSortedAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Add(2)
	r.GaugeFunc("m", func() int64 { return 42 })
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	flat := make(map[string]int64)
	Merge(flat, snap)
	if flat["m"] != 42 || flat["a"] != 2 || flat["z"] != 1 {
		t.Fatalf("unexpected snapshot: %v", flat)
	}
}

func TestMergeSumsAcrossSites(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("exec.executed").Add(3)
	b.Counter("exec.executed").Add(4)
	b.Counter("mem.cache_hits").Add(1)
	flat := make(map[string]int64)
	Merge(flat, a.Snapshot())
	Merge(flat, b.Snapshot())
	if flat["exec.executed"] != 7 || flat["mem.cache_hits"] != 1 {
		t.Fatalf("merge wrong: %v", flat)
	}
}

// TestConcurrentUse exercises creation, mutation and snapshotting from many
// goroutines; its value is mostly under -race.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Gauge("g").Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != workers*iters {
		t.Fatalf("shared = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*iters {
		t.Fatalf("lat count = %d, want %d", got, workers*iters)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus.sent").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var flat map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	if flat["bus.sent"] != 9 {
		t.Fatalf("handler served %v", flat)
	}

	// A nil registry must serve an empty object, not error.
	srv2 := httptest.NewServer(Handler(nil))
	defer srv2.Close()
	resp2, err := srv2.Client().Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty map[string]int64
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("nil registry served %v", empty)
	}
}

func BenchmarkCounterNil(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterHot(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
