// Package iomgr implements the SDVM's input/output manager (paper §4).
//
// "The input/output manager offers the functionality to access disk
// files and communicate with the user. Disk files are given a unique file
// handle when they are accessed for the first time (which contains the
// site id of the machine the file resides on). Therefore all other sites
// can access any opened file using this file handle — the access is
// automatically rerouted to the appropriate site. As the SDVM is run as a
// daemon and operated using a front end, the I/O manager sends all output
// and input requests to the front end."
package iomgr

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/msgbus"
	"repro/internal/types"
	"repro/internal/wire"
)

// FrontendSink consumes program output on the frontend site. The daemon
// wires it to subscriber channels.
type FrontendSink func(prog types.ProgramID, text string)

// Manager is one site's I/O manager.
type Manager struct {
	bus *msgbus.Bus

	// frontendSite resolves a program's frontend site (program manager).
	frontendSite func(types.ProgramID) types.SiteID

	mu sync.Mutex
	// files maps IO handles to open descriptors. guarded by mu
	files     map[types.GlobalAddr]*os.File
	nextLocal uint64
	sink      FrontendSink
	inputFn   func(prog types.ProgramID, prompt string) (string, bool)
	onOutput  func(prog types.ProgramID)
	outputs   uint64
}

// New returns an I/O manager registered for MgrIO.
func New(bus *msgbus.Bus) *Manager {
	m := &Manager{
		bus:          bus,
		frontendSite: func(types.ProgramID) types.SiteID { return types.InvalidSite },
		files:        make(map[types.GlobalAddr]*os.File),
		sink:         func(types.ProgramID, string) {},
		inputFn:      func(types.ProgramID, string) (string, bool) { return "", false },
		onOutput:     func(types.ProgramID) {},
	}
	bus.Register(types.MgrIO, m)
	return m
}

// SetFrontendSite wires the program manager's frontend lookup.
func (m *Manager) SetFrontendSite(f func(types.ProgramID) types.SiteID) {
	m.frontendSite = f
}

// SetSink installs the local frontend sink.
func (m *Manager) SetSink(s FrontendSink) {
	m.mu.Lock()
	m.sink = s
	m.mu.Unlock()
}

// SetInputProvider installs the local frontend's input source — what
// answers a microthread's Input call when this site is the program's
// frontend (paper §4: input requests go to the front end).
func (m *Manager) SetInputProvider(f func(prog types.ProgramID, prompt string) (string, bool)) {
	m.mu.Lock()
	if f != nil {
		m.inputFn = f
	}
	m.mu.Unlock()
}

// SetOutputHook installs an observer called once per Output (the
// accounting manager's meter).
func (m *Manager) SetOutputHook(f func(types.ProgramID)) {
	m.mu.Lock()
	if f != nil {
		m.onOutput = f
	}
	m.mu.Unlock()
}

// Input obtains one line of user input from the program's frontend,
// wherever the calling microthread runs.
func (m *Manager) Input(prog types.ProgramID, prompt string) (string, bool) {
	dst := m.frontendSite(prog)
	if dst == m.bus.Self() || !dst.Valid() {
		m.mu.Lock()
		f := m.inputFn
		m.mu.Unlock()
		return f(prog, prompt)
	}
	reply, err := m.bus.Request(dst, types.MgrIO, types.MgrIO,
		&wire.InputRequest{Program: prog, Prompt: prompt}, 30*time.Second)
	if err != nil {
		return "", false
	}
	ir, ok := reply.Payload.(*wire.InputReply)
	if !ok {
		return "", false
	}
	return ir.Line, ir.OK
}

// Output routes program output to the program's frontend: locally to the
// sink, remotely as a FrontendOutput message.
func (m *Manager) Output(prog types.ProgramID, text string) {
	m.mu.Lock()
	m.outputs++
	sink := m.sink
	hook := m.onOutput
	m.mu.Unlock()
	hook(prog)

	dst := m.frontendSite(prog)
	if dst == m.bus.Self() || !dst.Valid() {
		sink(prog, text)
		return
	}
	_ = m.bus.Send(dst, types.MgrIO, types.MgrIO, &wire.FrontendOutput{Program: prog, Text: text})
}

// Outputs returns the number of Output calls handled locally.
func (m *Manager) Outputs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.outputs
}

// Open opens (creating if needed) a local disk file and returns its
// global handle; the handle's home is this site.
func (m *Manager) Open(name string) (types.GlobalAddr, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return types.NilAddr, fmt.Errorf("iomgr: open: %w", err)
	}
	m.mu.Lock()
	m.nextLocal++
	h := types.GlobalAddr{Home: m.bus.Self(), Local: m.nextLocal}
	m.files[h] = f
	m.mu.Unlock()
	return h, nil
}

// OpenOn opens a file residing on a (possibly remote) site and returns
// the global handle.
func (m *Manager) OpenOn(site types.SiteID, name string) (types.GlobalAddr, error) {
	if site == m.bus.Self() {
		return m.Open(name)
	}
	reply, err := m.request(site, &wire.IORequest{Op: wire.IOOpOpen, Name: name})
	if err != nil {
		return types.NilAddr, err
	}
	return reply.Handle, nil
}

// ReadAt reads up to length bytes at offset from the file behind handle,
// wherever it lives.
func (m *Manager) ReadAt(handle types.GlobalAddr, offset int64, length int) ([]byte, error) {
	if handle.Home == m.bus.Self() {
		return m.localRead(handle, offset, length)
	}
	reply, err := m.request(handle.Home, &wire.IORequest{
		Op: wire.IOOpRead, Handle: handle, Offset: offset, Length: int32(length),
	})
	if err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// WriteAt writes data at offset into the file behind handle.
func (m *Manager) WriteAt(handle types.GlobalAddr, offset int64, data []byte) (int, error) {
	if handle.Home == m.bus.Self() {
		return m.localWrite(handle, offset, data)
	}
	reply, err := m.request(handle.Home, &wire.IORequest{
		Op: wire.IOOpWrite, Handle: handle, Offset: offset, Data: data,
	})
	if err != nil {
		return 0, err
	}
	return int(reply.N), nil
}

// Close closes the file behind handle.
func (m *Manager) Close(handle types.GlobalAddr) error {
	if handle.Home == m.bus.Self() {
		return m.localClose(handle)
	}
	_, err := m.request(handle.Home, &wire.IORequest{Op: wire.IOOpClose, Handle: handle})
	return err
}

// CloseAll closes every locally owned file (site shutdown).
func (m *Manager) CloseAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for h, f := range m.files {
		f.Close()
		delete(m.files, h)
	}
}

func (m *Manager) request(site types.SiteID, req *wire.IORequest) (*wire.IOReply, error) {
	reply, err := m.bus.Request(site, types.MgrIO, types.MgrIO, req, 10*time.Second)
	if err != nil {
		return nil, err
	}
	r, ok := reply.Payload.(*wire.IOReply)
	if !ok {
		return nil, fmt.Errorf("%w: io reply %T", types.ErrBadMessage, reply.Payload)
	}
	if !r.OK {
		return nil, fmt.Errorf("iomgr: remote: %s", r.Errmsg)
	}
	return r, nil
}

func (m *Manager) localFile(handle types.GlobalAddr) (*os.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[handle]
	if !ok {
		return nil, &types.AddrError{Err: types.ErrNoSuchObject, Addr: handle}
	}
	return f, nil
}

// maxIOChunk bounds a single read request (the reply must fit in one
// transport datagram). Request lengths arrive off the wire; a negative
// or oversized one is a corrupt request, not a real read.
const maxIOChunk = 1 << 20

func (m *Manager) localRead(handle types.GlobalAddr, offset int64, length int) ([]byte, error) {
	if length < 0 || length > maxIOChunk {
		return nil, fmt.Errorf("iomgr: read length %d out of range", length)
	}
	f, err := m.localFile(handle)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, length)
	n, err := f.ReadAt(buf, offset)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("iomgr: read: %w", err)
	}
	return buf[:n], nil
}

func (m *Manager) localWrite(handle types.GlobalAddr, offset int64, data []byte) (int, error) {
	f, err := m.localFile(handle)
	if err != nil {
		return 0, err
	}
	n, err := f.WriteAt(data, offset)
	if err != nil {
		return n, fmt.Errorf("iomgr: write: %w", err)
	}
	return n, nil
}

func (m *Manager) localClose(handle types.GlobalAddr) error {
	m.mu.Lock()
	f, ok := m.files[handle]
	delete(m.files, handle)
	m.mu.Unlock()
	if !ok {
		return &types.AddrError{Err: types.ErrNoSuchObject, Addr: handle}
	}
	return f.Close()
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.FrontendOutput:
		m.mu.Lock()
		m.outputs++
		sink := m.sink
		m.mu.Unlock()
		sink(p.Program, p.Text)
	case *wire.InputRequest:
		// The provider may block on a human; keep the dispatcher free.
		go func() {
			m.mu.Lock()
			f := m.inputFn
			m.mu.Unlock()
			line, ok := f(p.Program, p.Prompt)
			_ = m.bus.Reply(msg, types.MgrIO, &wire.InputReply{OK: ok, Line: line})
		}()
	case *wire.IORequest:
		// File work can touch the disk; keep the dispatcher free.
		go m.serveIO(msg, p)
	}
}

func (m *Manager) serveIO(msg *wire.Message, p *wire.IORequest) {
	var reply *wire.IOReply
	switch p.Op {
	case wire.IOOpOpen:
		h, err := m.Open(p.Name)
		if err != nil {
			reply = &wire.IOReply{Errmsg: err.Error()}
		} else {
			reply = &wire.IOReply{OK: true, Handle: h}
		}
	case wire.IOOpRead:
		data, err := m.localRead(p.Handle, p.Offset, int(p.Length))
		if err != nil {
			reply = &wire.IOReply{Errmsg: err.Error()}
		} else {
			reply = &wire.IOReply{OK: true, Data: data, N: int32(len(data))}
		}
	case wire.IOOpWrite:
		n, err := m.localWrite(p.Handle, p.Offset, p.Data)
		if err != nil {
			reply = &wire.IOReply{Errmsg: err.Error(), N: int32(n)}
		} else {
			reply = &wire.IOReply{OK: true, N: int32(n)}
		}
	case wire.IOOpClose:
		if err := m.localClose(p.Handle); err != nil {
			reply = &wire.IOReply{Errmsg: err.Error()}
		} else {
			reply = &wire.IOReply{OK: true}
		}
	default:
		reply = &wire.IOReply{Errmsg: "unknown io op"}
	}
	_ = m.bus.Reply(msg, types.MgrIO, reply)
}
