package iomgr

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/testnet"
	"repro/internal/types"
)

type sinkRec struct {
	mu    sync.Mutex
	lines []string
	ch    chan string
}

func newSinkRec() *sinkRec { return &sinkRec{ch: make(chan string, 64)} }

func (s *sinkRec) sink(prog types.ProgramID, text string) {
	s.mu.Lock()
	s.lines = append(s.lines, text)
	s.mu.Unlock()
	s.ch <- text
}

func ioCluster(t *testing.T, n int) ([]*testnet.Node, []*Manager, []*sinkRec) {
	t.Helper()
	mgrs := make([]*Manager, n)
	sinks := make([]*sinkRec, n)
	nodes := testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		mgrs[i] = New(node.Bus)
		sinks[i] = newSinkRec()
		mgrs[i].SetSink(sinks[i].sink)
	})
	for _, m := range mgrs {
		t.Cleanup(m.CloseAll)
	}
	return nodes, mgrs, sinks
}

func TestOutputLocalFrontend(t *testing.T) {
	_, mgrs, sinks := ioCluster(t, 1)
	prog := types.MakeProgramID(1, 1)
	self := mgrs[0].bus.Self()
	mgrs[0].SetFrontendSite(func(types.ProgramID) types.SiteID { return self })

	mgrs[0].Output(prog, "hello")
	if got := <-sinks[0].ch; got != "hello" {
		t.Fatalf("sink got %q", got)
	}
	if mgrs[0].Outputs() != 1 {
		t.Fatalf("Outputs = %d", mgrs[0].Outputs())
	}
}

func TestOutputRoutedToRemoteFrontend(t *testing.T) {
	// Paper §4: "the I/O manager sends all output ... to the front end"
	// wherever the microthread runs.
	_, mgrs, sinks := ioCluster(t, 2)
	prog := types.MakeProgramID(1, 1)
	frontend := mgrs[0].bus.Self()
	for _, m := range mgrs {
		m.SetFrontendSite(func(types.ProgramID) types.SiteID { return frontend })
	}

	mgrs[1].Output(prog, "from afar")
	if got := <-sinks[0].ch; got != "from afar" {
		t.Fatalf("frontend got %q", got)
	}
	select {
	case l := <-sinks[1].ch:
		t.Fatalf("output delivered to the wrong site: %q", l)
	default:
	}
}

func TestLocalFileRoundTrip(t *testing.T) {
	_, mgrs, _ := ioCluster(t, 1)
	m := mgrs[0]
	path := filepath.Join(t.TempDir(), "data.bin")

	h, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := m.WriteAt(h, 0, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("WriteAt = (%d,%v)", n, err)
	}
	got, err := m.ReadAt(h, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("ReadAt = %q", got)
	}
	if err := m.Close(h); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(h, 0, 1); !errors.Is(err, types.ErrNoSuchObject) {
		t.Fatalf("read after close = %v", err)
	}
}

func TestRemoteFileAccess(t *testing.T) {
	// "All other sites can access any opened file using this file
	// handle — the access is automatically rerouted."
	_, mgrs, _ := ioCluster(t, 2)
	owner, remote := mgrs[0], mgrs[1]
	path := filepath.Join(t.TempDir(), "shared.bin")

	h, err := owner.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Home != owner.bus.Self() {
		t.Fatalf("handle home = %v", h.Home)
	}

	// The remote site writes and reads through the handle.
	if n, err := remote.WriteAt(h, 0, []byte("remote payload")); err != nil || n != 14 {
		t.Fatalf("remote WriteAt = (%d,%v)", n, err)
	}
	got, err := remote.ReadAt(h, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("remote ReadAt = %q", got)
	}

	// The owner sees the remote write.
	got, err = owner.ReadAt(h, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "remote" {
		t.Fatalf("owner ReadAt = %q", got)
	}
	if err := remote.Close(h); err != nil {
		t.Fatal(err)
	}
}

func TestOpenOnRemoteSite(t *testing.T) {
	_, mgrs, _ := ioCluster(t, 2)
	path := filepath.Join(t.TempDir(), "far.bin")
	h, err := mgrs[1].OpenOn(mgrs[0].bus.Self(), path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Home != mgrs[0].bus.Self() {
		t.Fatalf("remote open handle home = %v", h.Home)
	}
	if _, err := mgrs[1].WriteAt(h, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingDirectoryFails(t *testing.T) {
	_, mgrs, _ := ioCluster(t, 1)
	if _, err := mgrs[0].Open("/nonexistent-dir-xyz/f"); err == nil {
		t.Fatal("Open in missing directory succeeded")
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, mgrs, _ := ioCluster(t, 2)
	bogus := types.GlobalAddr{Home: mgrs[0].bus.Self(), Local: 999}
	if _, err := mgrs[1].ReadAt(bogus, 0, 4); err == nil {
		t.Fatal("remote read of bogus handle succeeded")
	}
	if err := mgrs[1].Close(bogus); err == nil {
		t.Fatal("remote close of bogus handle succeeded")
	}
}

func TestCloseAll(t *testing.T) {
	_, mgrs, _ := ioCluster(t, 1)
	m := mgrs[0]
	dir := t.TempDir()
	h1, _ := m.Open(filepath.Join(dir, "a"))
	h2, _ := m.Open(filepath.Join(dir, "b"))
	m.CloseAll()
	for _, h := range []types.GlobalAddr{h1, h2} {
		if _, err := m.ReadAt(h, 0, 1); err == nil {
			t.Fatal("file survived CloseAll")
		}
	}
}
