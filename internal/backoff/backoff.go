// Package backoff provides capped exponential backoff with jitter for
// the SDVM's retry loops (memory fetches, help-request reissues).
//
// Fixed retry pauses synchronize: when a lossy link drops a burst of
// messages, every affected sender retries in lockstep and the burst
// repeats. Exponential growth spreads retries over time, the cap keeps
// the worst-case reaction bounded, and jitter decorrelates senders that
// started together. The delay schedule is a pure function of (policy,
// attempt, rng), so seeded callers stay deterministic.
package backoff

import (
	"math/rand"
	"time"
)

// Policy describes one retry loop's delay schedule.
type Policy struct {
	// Min is the base delay before the first retry.
	Min time.Duration
	// Max caps the grown delay (before jitter is applied).
	Max time.Duration
	// Factor multiplies the delay per attempt; values <= 1 mean 2.
	Factor float64
	// Jitter is the fraction of the delay randomized, in [0, 1]:
	// 0 = deterministic schedule, 0.5 = delay drawn from [0.5d, d],
	// 1 = drawn from (0, d]. Values outside the range are clamped.
	Jitter float64
}

// Delay returns the pause before retry number attempt (0-based). A nil
// rng disables jitter. Results are always in (0, Max] for a valid
// policy, so a Delay can be passed to a timer unconditionally.
//
//sdvm:deterministic
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	min := p.Min
	if min <= 0 {
		min = time.Millisecond
	}
	max := p.Max
	if max < min {
		max = min
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}

	d := float64(min)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}

	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	} else if jitter > 1 {
		jitter = 1
	}
	if jitter > 0 && rng != nil {
		// Scale into [1-jitter, 1]: retries never exceed the grown
		// delay, so the cap stays a true upper bound.
		d *= 1 - jitter*rng.Float64()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}
