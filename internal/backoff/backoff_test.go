package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Errorf("attempt %d: got %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayZeroPolicyDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0, nil); got != time.Millisecond {
		t.Errorf("zero policy first delay = %v, want 1ms", got)
	}
	if got := p.Delay(100, nil); got != time.Millisecond {
		t.Errorf("zero policy capped delay = %v, want 1ms (Max clamps to Min)", got)
	}
}

func TestJitterBoundsAndSpread(t *testing.T) {
	p := Policy{Min: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	lo, hi := time.Duration(1<<62), time.Duration(0)
	for i := 0; i < 1000; i++ {
		d := p.Delay(2, rng) // grown delay: 40ms
		if d <= 0 || d > 40*time.Millisecond {
			t.Fatalf("jittered delay %v out of (0, 40ms]", d)
		}
		if d < 20*time.Millisecond {
			t.Fatalf("jittered delay %v below 1-Jitter floor 20ms", d)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < 10*time.Millisecond {
		t.Errorf("jitter produced almost no spread: [%v, %v]", lo, hi)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	p := Policy{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		if da, db := p.Delay(i%6, a), p.Delay(i%6, b); da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestNilRngDisablesJitter(t *testing.T) {
	p := Policy{Min: 10 * time.Millisecond, Max: time.Second, Jitter: 1}
	if got := p.Delay(1, nil); got != 20*time.Millisecond {
		t.Errorf("nil rng delay = %v, want exact 20ms", got)
	}
}
