package bench

import (
	"testing"
	"time"

	"repro/internal/types"
)

// The harness's own tests run tiny configurations: they validate the
// measurement plumbing, not the headline numbers (cmd/sdvmbench and the
// root benchmarks produce those).

func quickSpec() Spec {
	return Spec{Sites: 2, WorkUnit: 500 * time.Microsecond}
}

func TestRunPrimesVerifiesResult(t *testing.T) {
	elapsed, err := RunPrimes(quickSpec(), 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestSpeedupShapeSmall(t *testing.T) {
	// A coarse shape check: 4 sites must beat 1 site clearly on a
	// wide workload. (The full Table 1 lives in the benchmarks.)
	spec := Spec{WorkUnit: time.Millisecond}
	spec.Sites = 1
	t1, err := RunPrimes(spec, 60, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec.Sites = 4
	t4, err := RunPrimes(spec, 60, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(t1) / float64(t4)
	t.Logf("T1=%v T4=%v speedup=%.2f", t1, t4, speedup)
	if speedup < 1.8 {
		t.Fatalf("speedup %.2f on 4 sites; distribution is broken", speedup)
	}
}

func TestOverheadSmall(t *testing.T) {
	res, err := Overhead(quickSpec(), 30, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seq=%v sdvm=%v overhead=%.1f%%", res.Seq, res.SDVM, 100*res.Overhead)
	if res.Overhead < -0.5 {
		t.Fatalf("SDVM 'overhead' is a huge speedup (%.2f); 1-site run is not sequential", res.Overhead)
	}
	if res.Overhead > 1.0 {
		t.Fatalf("overhead %.0f%% is far beyond the paper's ~3%%", 100*res.Overhead)
	}
}

func TestChurnSmall(t *testing.T) {
	res, err := Churn(Spec{Sites: 3, WorkUnit: time.Millisecond}, 50, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static=%v churn=%v joined=%v", res.Static, res.Churn, res.Joined)
	if !res.Joined {
		t.Error("late joiner never worked")
	}
}

func TestCrashSmall(t *testing.T) {
	res, err := Crash(Spec{Sites: 3, WorkUnit: time.Millisecond}, 50, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean=%v crash=%v recoveries=%d checkpoints=%d",
		res.CrashFree, res.WithCrash, res.Recoveries, res.Checkpoints)
	if res.Checkpoints == 0 {
		t.Error("no checkpoints taken")
	}
}

func TestSchedPoliciesSmall(t *testing.T) {
	out, err := SchedPolicies(Spec{Sites: 2, WorkUnit: 500 * time.Microsecond}, 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("%d policy results", len(out))
	}
	seen := map[[2]types.SchedulingClass]bool{}
	for _, r := range out {
		seen[[2]types.SchedulingClass{r.Local, r.Help}] = true
		if r.Elapsed <= 0 {
			t.Error("zero elapsed")
		}
	}
	if len(seen) != 4 {
		t.Fatalf("policy combinations missing: %v", seen)
	}
}

func TestWindowSweepSmall(t *testing.T) {
	out, err := WindowSweep(Spec{Sites: 2, WorkUnit: 500 * time.Microsecond}, []int{1, 5}, 12, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d window results", len(out))
	}
	t.Logf("W=1: %v, W=5: %v", out[0].Elapsed, out[1].Elapsed)
}

func TestSecuritySmall(t *testing.T) {
	res, err := Security(Spec{Sites: 2, WorkUnit: 500 * time.Microsecond}, 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain=%v encrypted=%v", res.Plain, res.Encrypted)
}

func TestIDAllocSmall(t *testing.T) {
	out, err := IDAlloc(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d strategies measured", len(out))
	}
	for _, r := range out {
		t.Logf("%s: %v", r.Strategy, r.Elapsed)
	}
}

func TestCentralVsDecentralSmall(t *testing.T) {
	res, err := CentralVsDecentral(Spec{Sites: 3, WorkUnit: 500 * time.Microsecond}, 30, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("decentral=%v central=%v", res.Decentral, res.Central)
}

func TestHeteroSmall(t *testing.T) {
	res, err := Hetero(Spec{Sites: 3, WorkUnit: 500 * time.Microsecond}, 30, 10, 2, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("homo=%v hetero=%v compiles=%d", res.Homogeneous, res.Hetero, res.Compiles)
	if res.Compiles == 0 {
		t.Error("hetero run compiled nothing")
	}
}

func TestTable1SingleRow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table1(Spec{WorkUnit: 300 * time.Microsecond}, 2,
		[]Table1Row{{P: 100, Width: 10, PaperSpeedup4: 3.4, PaperSpeedup8: 6.4}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("p=%d w=%d: T1=%v T4=%v (S=%.2f, paper %.1f) T8=%v (S=%.2f, paper %.1f)",
		r.P, r.Width, r.T1, r.T4, r.Speedup4, r.PaperSpeedup4, r.T8, r.Speedup8, r.PaperSpeedup8)
	if r.Speedup4 < 2.0 {
		t.Errorf("4-site speedup %.2f far below the paper's %.1f", r.Speedup4, r.PaperSpeedup4)
	}
	if r.Speedup8 < 3.0 {
		t.Errorf("8-site speedup %.2f far below the paper's %.1f", r.Speedup8, r.PaperSpeedup8)
	}
}

func TestScaleCurveSmall(t *testing.T) {
	out, err := ScaleCurve(Spec{WorkUnit: 500 * time.Microsecond}, []int{1, 2, 4}, 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d points", len(out))
	}
	if out[0].Speedup != 1.0 {
		t.Fatalf("first speedup = %v", out[0].Speedup)
	}
	t.Logf("scale: %v", out)
	if out[2].Speedup < 1.3 {
		t.Fatalf("4-site speedup %.2f; scaling broken", out[2].Speedup)
	}
}

func TestHeterogeneousSpeedsSmall(t *testing.T) {
	res, err := HeterogeneousSpeeds(Spec{WorkUnit: time.Millisecond},
		[]float64{2.0, 0.5}, 40, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shares) != 2 {
		t.Fatalf("%d shares", len(res.Shares))
	}
	fast, slow := res.Shares[0].Executed, res.Shares[1].Executed
	t.Logf("fast=%d slow=%d", fast, slow)
	// A 4x speed difference must show up in the shares.
	if fast <= slow {
		t.Fatalf("fast site executed %d <= slow site's %d", fast, slow)
	}
}

func TestScaleStormSmall(t *testing.T) {
	pts, err := ScaleStorm([]int{8}, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || !pts[0].Converged {
		t.Fatalf("scalestorm did not converge: %+v", pts)
	}
	if pts[0].ConvergeMS <= 0 || pts[0].LeaveMS <= 0 {
		t.Fatalf("missing timings: %+v", pts[0])
	}
}
