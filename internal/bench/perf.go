// Performance experiments behind the hot-path pass: sharded attraction
// memory, batched help grants and per-peer message coalescing. These are
// the P-experiments BENCH_2.json records next to the O-1 overhead point;
// DESIGN.md §9 explains what each one locks in.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/types"
	"repro/internal/workloads"
)

// MemStressResult is the P-1 sharded-memory throughput measurement.
type MemStressResult struct {
	Procs      int     // GOMAXPROCS of the parallel phase
	Ops1       float64 // ops/sec with GOMAXPROCS=1
	OpsN       float64 // ops/sec with GOMAXPROCS=Procs
	Scaling    float64 // OpsN / Ops1
	Contention uint64  // shard-lock waits over the whole run
}

// MemStress hammers one site's attraction memory from `workers`
// goroutines doing partitioned writes and reads of their own objects,
// once pinned to a single CPU and once at `procs`, and reports the
// throughput ratio. On a single-mutex manager the ratio stays ≈1 no
// matter how many CPUs the host has; the sharded manager tracks the
// available parallelism (the ratio is necessarily ≈1 on a single-core
// host too — the shard-contention counter is the signal there).
func MemStress(spec Spec, workers, addrsPerWorker, rounds, procs int) (MemStressResult, error) {
	s := spec
	s.Sites = 1
	s.Metrics = true
	c, err := NewCluster(s)
	if err != nil {
		return MemStressResult{}, err
	}
	defer c.Close()
	mem := c.Daemons[0].Mem

	pid := types.MakeProgramID(1, 1)
	addrs := make([]types.GlobalAddr, workers*addrsPerWorker)
	for i := range addrs {
		addrs[i] = mem.Alloc(pid, make([]byte, 64))
	}

	phase := func(p int) (float64, error) {
		prev := runtime.GOMAXPROCS(p)
		defer runtime.GOMAXPROCS(prev)
		var (
			wg       sync.WaitGroup
			errOnce  sync.Once
			firstErr error
		)
		fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
		start := time.Now()
		for w := 0; w < workers; w++ {
			mine := addrs[w*addrsPerWorker : (w+1)*addrsPerWorker]
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, 64)
				for r := 0; r < rounds; r++ {
					for _, a := range mine {
						if err := mem.Write(a, 0, buf); err != nil {
							fail(fmt.Errorf("worker %d write: %w", w, err))
							return
						}
						if _, err := mem.Read(a); err != nil {
							fail(fmt.Errorf("worker %d read: %w", w, err))
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(2*workers*addrsPerWorker*rounds) / elapsed.Seconds(), nil
	}

	ops1, err := phase(1)
	if err != nil {
		return MemStressResult{}, err
	}
	opsN, err := phase(procs)
	if err != nil {
		return MemStressResult{}, err
	}
	return MemStressResult{
		Procs:      procs,
		Ops1:       ops1,
		OpsN:       opsN,
		Scaling:    opsN / ops1,
		Contention: mem.Stats().ShardContention,
	}, nil
}

// HelpStormResult is the P-2 batched-grant / coalescing measurement.
type HelpStormResult struct {
	Single      time.Duration // HelpBatch=1, no coalescing (pre-batching behavior)
	Batched     time.Duration // HelpBatch=8 + per-peer coalescing
	Grants      int64         // batched run: help replies that granted frames
	GrantFrames int64         // batched run: frames granted across those replies
	Coalesced   int64         // batched run: messages delivered in multi-message envelopes
}

// HelpStorm runs the primes workload on a cluster whose idle sites keep
// begging the busy one for work — the help-protocol hot path — once with
// single-frame grants and once with batched grants plus per-peer message
// coalescing, and reports the batching machinery's own counters from the
// batched run.
func HelpStorm(spec Spec, p, width int, cost float64) (HelpStormResult, error) {
	s := spec
	s.Sites = 4
	s.Coalesce = false
	s.HelpBatch = 1
	single, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return HelpStormResult{}, err
	}

	s.Coalesce = true
	s.HelpBatch = 8
	s.Metrics = true
	c, err := NewCluster(s)
	if err != nil {
		return HelpStormResult{}, err
	}
	defer c.Close()
	elapsed, raw, err := c.Run(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return HelpStormResult{}, err
	}
	primes := workloads.ParsePrimesResult(raw)
	if len(primes) != p || primes[p-1] != workloads.NthPrime(p) {
		return HelpStormResult{}, fmt.Errorf("bench: helpstorm result wrong (%d primes)", len(primes))
	}
	totals := c.MetricsTotals()
	return HelpStormResult{
		Single:  single,
		Batched: elapsed,
		// The grant histogram observes the batch size as a unitless
		// Duration, so sum_ns is the total frames granted in batches.
		Grants:      totals["sched.grant.batch.count"],
		GrantFrames: totals["sched.grant.batch.sum_ns"],
		Coalesced:   totals["net.coalesced"],
	}, nil
}

// ScaleStormPoint is one cluster size of the P-4 gossip-scale
// measurement.
type ScaleStormPoint struct {
	Sites      int
	JoinMS     float64 // wall-clock for the sequential sign-on wave
	ConvergeMS float64 // ...until every site's roster holds every site
	LeaveMS    float64 // ...until one sign-off tombstone reaches all rosters
	Converged  bool
}

// ScaleStorm builds gossip-mode clusters of the given sizes and measures
// membership dissemination at scale. In gossip mode a sign-on is not
// broadcast — late joiners get the roster from the sign-on snapshot, but
// every earlier site learns of them only through bounded epidemic
// digests — so full roster convergence is a direct measurement of the
// protocol's O(log N) dissemination. The final phase signs one site off
// and times the Left tombstone's spread back across every roster.
// Broadcast mode would cost O(N²) messages per load-report tick at these
// sizes; gossip runs them at O(N·fanout).
func ScaleStorm(sizes []int, workUnit time.Duration) ([]ScaleStormPoint, error) {
	out := make([]ScaleStormPoint, 0, len(sizes))
	for _, n := range sizes {
		pt, err := scaleStormOne(n, workUnit)
		if err != nil {
			return out, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func scaleStormOne(n int, workUnit time.Duration) (ScaleStormPoint, error) {
	pt := ScaleStormPoint{Sites: n}
	start := time.Now()
	c, err := NewCluster(Spec{Sites: n, WorkUnit: workUnit, Gossip: true})
	if err != nil {
		return pt, err
	}
	defer c.Close()
	pt.JoinMS = float64(time.Since(start)) / float64(time.Millisecond)

	full := func(want int, skip int) bool {
		for i, d := range c.Daemons {
			if i == skip {
				continue
			}
			if d.CM.Size() != want {
				return false
			}
		}
		return true
	}
	// Generous deadline: the dissemination itself is seconds even at
	// 256 sites, but a saturated CI host runs 256 daemons' goroutines
	// far slower than wall-clock gossip math suggests.
	wait := func(cond func() bool) bool {
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return cond()
	}

	if !wait(func() bool { return full(n, -1) }) {
		return pt, fmt.Errorf("bench: scalestorm %d sites: rosters did not converge", n)
	}
	pt.ConvergeMS = float64(time.Since(start)) / float64(time.Millisecond)

	// SignOff runs in the background: LeaveMS measures how fast the
	// Left tombstone reaches every roster (the protocol property), not
	// how long the leaver's local transport teardown takes.
	leaveStart := time.Now()
	leaver := len(c.Daemons) - 1
	signedOff := make(chan error, 1)
	go func() { signedOff <- c.Daemons[leaver].SignOff() }()
	if !wait(func() bool { return full(n-1, leaver) }) {
		return pt, fmt.Errorf("bench: scalestorm %d sites: sign-off did not disseminate", n)
	}
	pt.LeaveMS = float64(time.Since(leaveStart)) / float64(time.Millisecond)
	if err := <-signedOff; err != nil {
		return pt, fmt.Errorf("bench: scalestorm %d sites: sign-off: %w", n, err)
	}
	pt.Converged = true
	return pt, nil
}

// MemReadResult is the P-5 read-replica measurement: the same cluster
// and read-hot access pattern, with the replica protocol on and off.
type MemReadResult struct {
	OpsWith       float64 // reads/sec, replication on
	OpsWithout    float64 // reads/sec, replication off
	ReplicaHits   uint64  // replication on: reads served from a local replica
	RemoteWith    uint64  // replication on: reads that crossed the network
	RemoteWithout uint64  // replication off: ditto (≈ every read)
	Writes        uint64  // background owner writes per run (invalidation traffic)
	Effective     bool    // hits observed AND strictly fewer remote fetches

	// Metrics is the replication-on run's cluster-wide counter totals,
	// so the trajectory report carries mem.replica.hits and
	// mem.replica.invalidations next to the derived numbers.
	Metrics map[string]int64
}

// MemRead measures what the read-replica protocol buys on a read-hot
// working set: `readers` goroutines on every non-owner site sweep the
// owner's objects `rounds` times while the owner keeps writing in the
// background (so invalidations are part of the measurement, not assumed
// away). With replication off every read is a cross-site round-trip;
// with it on, all but the first fault-in per (site, object) — and the
// re-faults after each invalidation — are served locally.
func MemRead(spec Spec, readers, objects, rounds int) (MemReadResult, error) {
	if spec.Link.Latency == 0 {
		spec.Link.Latency = 200 * time.Microsecond
	}
	run := func(disable bool) (ops float64, hits, remote, writes uint64, totals map[string]int64, err error) {
		s := spec
		s.Sites = 4
		s.Metrics = true
		s.NoReadReplication = disable
		c, err := NewCluster(s)
		if err != nil {
			return 0, 0, 0, 0, nil, err
		}
		defer c.Close()

		own := c.Daemons[0].Mem
		pid := types.MakeProgramID(1, 1)
		addrs := make([]types.GlobalAddr, objects)
		for i := range addrs {
			addrs[i] = own.Alloc(pid, make([]byte, 64))
		}

		// Background writer: steady owner-side stores, so the run prices
		// in invalidation rounds and replica re-faults.
		stop := make(chan struct{})
		var writerDone sync.WaitGroup
		writerDone.Add(1)
		var wrote uint64
		go func() {
			defer writerDone.Done()
			buf := make([]byte, 64)
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					if own.Write(addrs[i%len(addrs)], 0, buf) == nil {
						wrote++
					}
				}
			}
		}()

		var (
			wg       sync.WaitGroup
			errOnce  sync.Once
			firstErr error
		)
		fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
		start := time.Now()
		for site := 1; site < s.Sites; site++ {
			mem := c.Daemons[site].Mem
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(site, w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for _, a := range addrs {
							if _, err := mem.Read(a); err != nil {
								fail(fmt.Errorf("site %d reader %d: %w", site, w, err))
								return
							}
						}
					}
				}(site, w)
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		writerDone.Wait()
		if firstErr != nil {
			return 0, 0, 0, 0, nil, firstErr
		}
		for _, d := range c.Daemons {
			st := d.Mem.Stats()
			hits += st.ReplicaHits
			remote += st.RemoteReads
		}
		reads := float64((s.Sites - 1) * readers * objects * rounds)
		return reads / elapsed.Seconds(), hits, remote, wrote, c.MetricsTotals(), nil
	}

	opsWith, hits, remoteWith, writes, totals, err := run(false)
	if err != nil {
		return MemReadResult{}, err
	}
	opsWithout, _, remoteWithout, _, _, err := run(true)
	if err != nil {
		return MemReadResult{}, err
	}
	return MemReadResult{
		OpsWith:       opsWith,
		OpsWithout:    opsWithout,
		ReplicaHits:   hits,
		RemoteWith:    remoteWith,
		RemoteWithout: remoteWithout,
		Writes:        writes,
		Effective:     hits > 0 && remoteWith < remoteWithout,
		Metrics:       totals,
	}, nil
}
