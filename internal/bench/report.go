// Machine-readable experiment reports. cmd/sdvmbench -json funnels every
// experiment it ran through a Report and writes BENCH_1.json, giving CI a
// stable artifact to archive and compare across commits.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// Summary is one experiment's machine-readable outcome.
type Summary struct {
	// Experiment names the run ("overhead", "speedup", ...).
	Experiment string `json:"experiment"`
	// WallClockMS is the harness-side duration of the whole experiment.
	WallClockMS float64 `json:"wall_clock_ms"`
	// Err is the experiment's failure, empty on success.
	Err string `json:"error,omitempty"`
	// Values holds the experiment's headline numbers (speedups,
	// overhead fraction, ...), keyed by a stable name.
	Values map[string]float64 `json:"values,omitempty"`
	// Metrics holds cluster-wide metric totals for instrumented runs.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Report is the top-level BENCH_1.json document.
type Report struct {
	Schema      string    `json:"schema"`
	Paper       string    `json:"paper"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	Experiments []Summary `json:"experiments"`
}

// NewReport returns an empty report with the environment stamped in.
func NewReport() *Report {
	return &Report{
		Schema:    "sdvm-bench/1",
		Paper:     "The SDVM: an approach for future adaptive computer clusters (IPPS 2005)",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
}

// Add records one experiment outcome.
func (r *Report) Add(s Summary) { r.Experiments = append(r.Experiments, s) }

// Failed reports whether any recorded experiment errored.
func (r *Report) Failed() bool {
	for _, s := range r.Experiments {
		if s.Err != "" {
			return true
		}
	}
	return false
}

// Write marshals the report to path as indented JSON. Experiments keep
// insertion order; map keys are sorted by encoding/json already.
func (r *Report) Write(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("bench: write report: %w", err)
	}
	return nil
}

// Timed runs f, stamping its wall-clock and error into a Summary.
func Timed(name string, f func(s *Summary) error) Summary {
	s := Summary{Experiment: name}
	start := time.Now()
	err := f(&s)
	s.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		s.Err = err.Error()
	}
	return s
}

// TopMetrics picks the n largest metric totals — a readable slice of an
// instrumented run for logs (the full map still goes into the JSON).
func TopMetrics(totals map[string]int64, n int) []string {
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	if n > len(names) {
		n = len(names)
	}
	out := make([]string, 0, n)
	for _, name := range names[:n] {
		out = append(out, fmt.Sprintf("%s=%d", name, totals[name]))
	}
	return out
}
