// Package bench is the experiment harness behind cmd/sdvmbench and the
// root-level testing.B benchmarks. Every table and figure of the paper's
// evaluation (§5) — plus the ablations DESIGN.md lists — is regenerated
// by one function here, so the CLI and `go test -bench` report identical
// numbers.
//
// Time scale: the paper's prime test costs ≈60 ms per candidate on a
// 1.7 GHz Pentium IV. The harness expresses costs in Work units and maps
// them to wall-clock via Spec.WorkUnit, so the whole evaluation runs at
// 1/20th of 2005 scale by default. Sites simulate their computation by
// sleeping while holding their single-CPU token (see the exec package),
// which reproduces parallel speedup shape on any host, even single-core.
package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/daemon"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/mthread"
	"repro/internal/security"
	"repro/internal/transport/inproc"
	"repro/internal/types"
	"repro/internal/workloads"
)

// Spec describes the cluster a measurement runs on.
type Spec struct {
	Sites int
	// WorkUnit maps one Work unit to wall-clock (default 1ms).
	WorkUnit time.Duration
	// Window is the latency-hiding window (default: paper's 5).
	Window int
	// Link is the simulated network profile (zero = fast LAN).
	Link inproc.LinkProfile
	// LocalPolicy/HelpPolicy override scheduling (A-1).
	LocalPolicy types.SchedulingClass
	HelpPolicy  types.SchedulingClass
	// CentralSched switches to the master/worker baseline (A-5).
	CentralSched bool
	// Secret enables AES-GCM on all traffic (A-3).
	Secret string
	// DistinctPlatforms gives every site its own platform id, forcing
	// on-the-fly compilation everywhere (hetero experiment).
	DistinctPlatforms bool
	// CompileCost per on-the-fly compile.
	CompileCost time.Duration
	// Checkpointing/heartbeat (crash experiment).
	CheckpointEvery time.Duration
	HeartbeatEvery  time.Duration
	// RestartGrace overrides the submitter's last-resort restart delay.
	RestartGrace time.Duration
	// NoReadReplication disables the attraction memory's read cache
	// (A-6 ablation).
	NoReadReplication bool
	// NoCriticalPinning disables §3.3 critical-path scheduling hints
	// (A-7 ablation).
	NoCriticalPinning bool
	// Coalesce enables per-peer small-message coalescing in every
	// site's network manager (P-2 experiment).
	Coalesce bool
	// HelpBatch caps the frames one help reply may grant (0 = the
	// scheduler's default; 1 restores pre-batching single grants).
	HelpBatch int
	// Metrics enables every daemon's metrics registry so an experiment
	// can report counter deltas next to wall-clock (see MetricsTotals).
	Metrics bool
	// Gossip runs the cluster on the epidemic membership layer
	// (internal/gossip) instead of broadcast load reports and goodbyes —
	// the P-4 scalestorm configuration.
	Gossip bool
}

func (s Spec) workUnit() time.Duration {
	if s.WorkUnit <= 0 {
		return time.Millisecond
	}
	return s.WorkUnit
}

// Cluster is a running measurement cluster.
type Cluster struct {
	Fabric  *inproc.Fabric
	Daemons []*daemon.Daemon
}

// NewCluster builds the cluster a Spec describes.
func NewCluster(spec Spec) (*Cluster, error) {
	fab := inproc.New(spec.Link)
	c := &Cluster{Fabric: fab}
	for i := 0; i < spec.Sites; i++ {
		cfg := daemon.Config{
			PhysAddr:          fmt.Sprintf("bench-site-%d", i),
			Network:           fab,
			WorkModel:         exec.WorkSimulated,
			WorkUnit:          spec.workUnit(),
			Window:            spec.Window,
			LocalPolicy:       spec.LocalPolicy,
			HelpPolicy:        spec.HelpPolicy,
			CentralSched:      spec.CentralSched,
			CompileCost:       spec.CompileCost,
			RestartGrace:      spec.RestartGrace,
			NoReadReplication: spec.NoReadReplication,
			NoCriticalPinning: spec.NoCriticalPinning,
			Coalesce:          spec.Coalesce,
			HelpBatch:         spec.HelpBatch,
			Metrics:           spec.Metrics,
			Gossip:            spec.Gossip,
			Seed:              int64(i + 1),
		}
		if spec.Secret != "" {
			layer, err := security.NewAESGCM(spec.Secret)
			if err != nil {
				c.Close()
				return nil, err
			}
			cfg.Security = layer
		}
		if spec.DistinctPlatforms {
			cfg.Platform = types.PlatformID(i + 1)
		}
		if spec.CheckpointEvery > 0 || spec.HeartbeatEvery > 0 {
			cfg.Checkpoint.Interval = spec.CheckpointEvery
			cfg.Checkpoint.HeartbeatEvery = spec.HeartbeatEvery
			cfg.Checkpoint.HeartbeatTimeout = 150 * time.Millisecond
			cfg.Checkpoint.MissLimit = 3
		}
		d := daemon.New(cfg)
		var err error
		if i == 0 {
			err = d.Bootstrap()
		} else {
			err = d.Join("bench-site-0")
		}
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("bench: site %d: %w", i, err)
		}
		c.Daemons = append(c.Daemons, d)
	}
	return c, nil
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	for _, d := range c.Daemons {
		d.Kill()
	}
	c.Fabric.Close()
}

// MetricsTotals sums every daemon's metrics snapshot by name — the
// cluster-wide view `sdvmstat -metrics` prints, without the bus hop.
// Returns nil unless the cluster was built with Spec.Metrics.
func (c *Cluster) MetricsTotals() map[string]int64 {
	var totals map[string]int64
	for _, d := range c.Daemons {
		if d.Metrics == nil {
			continue
		}
		if totals == nil {
			totals = map[string]int64{}
		}
		metrics.Merge(totals, d.Metrics.Snapshot())
	}
	return totals
}

// Run submits app on site 0 and returns the wall-clock time to the
// program's termination plus the raw result.
func (c *Cluster) Run(app daemon.App, args ...[]byte) (time.Duration, []byte, error) {
	start := time.Now()
	prog, err := c.Daemons[0].Submit(app, args...)
	if err != nil {
		return 0, nil, err
	}
	raw, ok := c.Daemons[0].WaitResult(prog, 30*time.Minute)
	if !ok {
		return 0, nil, fmt.Errorf("bench: program %v did not terminate", prog)
	}
	return time.Since(start), raw, nil
}

// RunPrimes measures one primes configuration on a fresh cluster and
// verifies the result.
func RunPrimes(spec Spec, p, width int, cost float64) (time.Duration, error) {
	c, err := NewCluster(spec)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	elapsed, raw, err := c.Run(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return 0, err
	}
	primes := workloads.ParsePrimesResult(raw)
	if len(primes) != p || primes[p-1] != workloads.NthPrime(p) {
		return 0, fmt.Errorf("bench: wrong primes result (%d found, last %d)", len(primes), primes[len(primes)-1])
	}
	return elapsed, nil
}

// RunSeqPrimes measures the stand-alone sequential baseline under the
// same simulated cost model (paper §5 / [5] overhead experiment).
func RunSeqPrimes(p, width int, cost float64, workUnit time.Duration) time.Duration {
	if workUnit <= 0 {
		workUnit = time.Millisecond
	}
	start := time.Now()
	workloads.SeqPrimes(p, width, cost, func(c float64) {
		if c > 0 {
			time.Sleep(time.Duration(c * float64(workUnit)))
		}
	})
	return time.Since(start)
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	P, Width       int
	T1, T4, T8     time.Duration
	Speedup4       float64
	Speedup8       float64
	PaperSpeedup4  float64
	PaperSpeedup8  float64
	PaperT1Seconds float64
}

// PaperTable1 holds the published numbers for comparison.
var PaperTable1 = []Table1Row{
	{P: 100, Width: 10, PaperT1Seconds: 33.9, PaperSpeedup4: 3.4, PaperSpeedup8: 6.4},
	{P: 200, Width: 10, PaperT1Seconds: 71.9, PaperSpeedup4: 3.4, PaperSpeedup8: 6.5},
	{P: 500, Width: 10, PaperT1Seconds: 207.0, PaperSpeedup4: 3.4, PaperSpeedup8: 6.5},
	{P: 1000, Width: 10, PaperT1Seconds: 455.9, PaperSpeedup4: 3.5, PaperSpeedup8: 6.6},
	{P: 100, Width: 20, PaperT1Seconds: 31.1, PaperSpeedup4: 3.5, PaperSpeedup8: 6.9},
	{P: 200, Width: 20, PaperT1Seconds: 69.6, PaperSpeedup4: 3.6, PaperSpeedup8: 7.0},
	{P: 500, Width: 20, PaperT1Seconds: 199.3, PaperSpeedup4: 3.6, PaperSpeedup8: 6.9},
	{P: 1000, Width: 20, PaperT1Seconds: 435.7, PaperSpeedup4: 3.6, PaperSpeedup8: 7.0},
}

// Table1 reruns the paper's speedup table. cost is the Work units per
// candidate test; rows selects a subset of PaperTable1 (nil = all).
func Table1(spec Spec, cost float64, rows []Table1Row) ([]Table1Row, error) {
	if rows == nil {
		rows = PaperTable1
	}
	out := make([]Table1Row, 0, len(rows))
	for _, row := range rows {
		r := row
		for _, sites := range []int{1, 4, 8} {
			s := spec
			s.Sites = sites
			elapsed, err := RunPrimes(s, r.P, r.Width, cost)
			if err != nil {
				return out, fmt.Errorf("p=%d width=%d sites=%d: %w", r.P, r.Width, sites, err)
			}
			switch sites {
			case 1:
				r.T1 = elapsed
			case 4:
				r.T4 = elapsed
			case 8:
				r.T8 = elapsed
			}
		}
		r.Speedup4 = float64(r.T1) / float64(r.T4)
		r.Speedup8 = float64(r.T1) / float64(r.T8)
		out = append(out, r)
	}
	return out, nil
}

// OverheadResult is the O-1 experiment outcome.
type OverheadResult struct {
	Seq      time.Duration
	SDVM     time.Duration
	Overhead float64 // (SDVM-Seq)/Seq
}

// Overhead compares a 1-site SDVM run against the stand-alone sequential
// program ([5] reports ≈3 %).
func Overhead(spec Spec, p, width int, cost float64) (OverheadResult, error) {
	seq := RunSeqPrimes(p, width, cost, spec.workUnit())
	s := spec
	s.Sites = 1
	sdvm, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return OverheadResult{}, err
	}
	return OverheadResult{
		Seq:      seq,
		SDVM:     sdvm,
		Overhead: float64(sdvm-seq) / float64(seq),
	}, nil
}

// OverheadWithMetrics runs the O-1 experiment with the metrics registry
// enabled and also returns the 1-site cluster's metric totals, so the
// JSON report can pair wall-clock with the work the machinery did.
func OverheadWithMetrics(spec Spec, p, width int, cost float64) (OverheadResult, map[string]int64, error) {
	seq := RunSeqPrimes(p, width, cost, spec.workUnit())
	s := spec
	s.Sites = 1
	s.Metrics = true
	c, err := NewCluster(s)
	if err != nil {
		return OverheadResult{}, nil, err
	}
	defer c.Close()
	elapsed, raw, err := c.Run(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return OverheadResult{}, nil, err
	}
	primes := workloads.ParsePrimesResult(raw)
	if len(primes) != p || primes[p-1] != workloads.NthPrime(p) {
		return OverheadResult{}, nil, fmt.Errorf("bench: wrong primes result (%d found)", len(primes))
	}
	return OverheadResult{
		Seq:      seq,
		SDVM:     elapsed,
		Overhead: float64(elapsed-seq) / float64(seq),
	}, c.MetricsTotals(), nil
}

// ChurnResult is the dynamic-entry/exit experiment outcome.
type ChurnResult struct {
	Static time.Duration // fixed cluster of Sites
	Churn  time.Duration // same, with one site joining and one leaving mid-run
	Joined bool          // the late joiner executed work
}

// Churn measures the cost/benefit of sites joining and leaving mid-run
// (paper §3.4): a run on N sites vs a run starting with N-1 sites where
// one site joins after startDelay and one signs off halfway.
func Churn(spec Spec, p, width int, cost float64) (ChurnResult, error) {
	s := spec
	elapsedStatic, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return ChurnResult{}, err
	}

	// Churn run: start with Sites-1, join one later, sign one off.
	s.Sites = spec.Sites - 1
	if s.Sites < 1 {
		s.Sites = 1
	}
	c, err := NewCluster(s)
	if err != nil {
		return ChurnResult{}, err
	}
	defer c.Close()

	start := time.Now()
	prog, err := c.Daemons[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return ChurnResult{}, err
	}

	// A new site joins shortly after the run starts...
	time.Sleep(150 * time.Millisecond)
	lateCfg := daemon.Config{
		PhysAddr:  "bench-late",
		Network:   c.Fabric,
		WorkModel: exec.WorkSimulated,
		WorkUnit:  s.workUnit(),
		Window:    s.Window,
		Seed:      99,
	}
	late := daemon.New(lateCfg)
	if err := late.Join("bench-site-0"); err != nil {
		return ChurnResult{}, err
	}
	defer late.Kill()

	// ...and one of the original sites leaves a little later.
	if len(c.Daemons) > 1 {
		time.Sleep(150 * time.Millisecond)
		if err := c.Daemons[len(c.Daemons)-1].SignOff(); err != nil {
			return ChurnResult{}, err
		}
	}

	raw, ok := c.Daemons[0].WaitResult(prog, 30*time.Minute)
	if !ok {
		return ChurnResult{}, fmt.Errorf("bench: churn run did not terminate")
	}
	primes := workloads.ParsePrimesResult(raw)
	if len(primes) != p {
		return ChurnResult{}, fmt.Errorf("bench: churn run returned %d primes", len(primes))
	}
	return ChurnResult{
		Static: elapsedStatic,
		Churn:  time.Since(start),
		Joined: late.Exec.Executed() > 0,
	}, nil
}

// CrashResult is the crash-recovery experiment outcome.
type CrashResult struct {
	CrashFree   time.Duration
	WithCrash   time.Duration
	Recoveries  uint64
	Checkpoints uint64
}

// Crash measures the cost of losing one site mid-run with checkpointing
// enabled; the run must still produce the correct result.
func Crash(spec Spec, p, width int, cost float64) (CrashResult, error) {
	s := spec
	if s.CheckpointEvery == 0 {
		s.CheckpointEvery = 100 * time.Millisecond
	}
	if s.HeartbeatEvery == 0 {
		s.HeartbeatEvery = 50 * time.Millisecond
	}
	if s.RestartGrace == 0 {
		s.RestartGrace = 1500 * time.Millisecond
	}

	clean, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return CrashResult{}, err
	}

	c, err := NewCluster(s)
	if err != nil {
		return CrashResult{}, err
	}
	defer c.Close()
	start := time.Now()
	prog, err := c.Daemons[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return CrashResult{}, err
	}
	time.Sleep(400 * time.Millisecond)
	victim := len(c.Daemons) - 1
	c.Fabric.KillSite(fmt.Sprintf("bench-site-%d", victim))
	c.Daemons[victim].Kill()

	raw, ok := c.Daemons[0].WaitResult(prog, 30*time.Minute)
	if !ok {
		return CrashResult{}, fmt.Errorf("bench: crash run did not terminate")
	}
	primes := workloads.ParsePrimesResult(raw)
	if len(primes) != p || primes[p-1] != workloads.NthPrime(p) {
		return CrashResult{}, fmt.Errorf("bench: crash run result wrong")
	}

	var rec, taken uint64
	for i, d := range c.Daemons {
		if i == victim {
			continue
		}
		rec += d.Ckpt.Recovered()
		taken += d.Ckpt.Taken()
	}
	return CrashResult{
		CrashFree:   clean,
		WithCrash:   time.Since(start),
		Recoveries:  rec,
		Checkpoints: taken,
	}, nil
}

// PolicyResult is one A-1 scheduling-policy measurement.
type PolicyResult struct {
	Local, Help types.SchedulingClass
	Elapsed     time.Duration
}

// SchedPolicies sweeps local×help policy combinations (A-1). The paper's
// choice is FIFO local + LIFO help.
func SchedPolicies(spec Spec, p, width int, cost float64) ([]PolicyResult, error) {
	var out []PolicyResult
	for _, local := range []types.SchedulingClass{types.SchedFIFO, types.SchedLIFO} {
		for _, help := range []types.SchedulingClass{types.SchedFIFO, types.SchedLIFO} {
			s := spec
			s.LocalPolicy = local
			s.HelpPolicy = help
			elapsed, err := RunPrimes(s, p, width, cost)
			if err != nil {
				return out, err
			}
			out = append(out, PolicyResult{Local: local, Help: help, Elapsed: elapsed})
		}
	}
	return out, nil
}

// WindowResult is one A-2 latency-window measurement.
type WindowResult struct {
	Window  int
	Elapsed time.Duration
}

// WindowSweep measures the latency-hiding window W (paper: ≈5 is good)
// on the memory-bound matmul workload over a latency-injected network.
func WindowSweep(spec Spec, windows []int, n, grid int, cost float64) ([]WindowResult, error) {
	if spec.Link.Latency == 0 {
		spec.Link.Latency = 2 * time.Millisecond // remote reads must hurt
	}
	var out []WindowResult
	for _, w := range windows {
		s := spec
		s.Window = w
		c, err := NewCluster(s)
		if err != nil {
			return out, err
		}
		elapsed, raw, err := c.Run(workloads.MatMulApp(), workloads.MatMulArgs(n, grid, cost)...)
		c.Close()
		if err != nil {
			return out, err
		}
		want := workloads.SeqMatMul(n, grid, 0, func(float64) {})
		if diff := mthread.ParseF64(raw) - want; diff > 1e-6 || diff < -1e-6 {
			return out, fmt.Errorf("bench: window sweep checksum wrong")
		}
		out = append(out, WindowResult{Window: w, Elapsed: elapsed})
	}
	return out, nil
}

// ScalePoint is one point of the scalability curve.
type ScalePoint struct {
	Sites   int
	Elapsed time.Duration
	Speedup float64
}

// ScaleCurve measures the speedup over a range of cluster sizes — the
// paper's scalability claim (goal 5, §2.2: "the cluster is essentially
// scalable to any desired size").
func ScaleCurve(spec Spec, sizes []int, p, width int, cost float64) ([]ScalePoint, error) {
	var out []ScalePoint
	var t1 time.Duration
	for _, n := range sizes {
		s := spec
		s.Sites = n
		elapsed, err := RunPrimes(s, p, width, cost)
		if err != nil {
			return out, err
		}
		if n == 1 || t1 == 0 {
			t1 = elapsed
		}
		out = append(out, ScalePoint{Sites: n, Elapsed: elapsed, Speedup: float64(t1) / float64(elapsed)})
	}
	return out, nil
}

// SpeedShare is one site's share of a heterogeneous-speed run.
type SpeedShare struct {
	Site     types.SiteID
	Speed    float64
	Executed uint64
}

// SpeedsResult is the heterogeneous-speed load-balancing measurement.
type SpeedsResult struct {
	Elapsed time.Duration
	Shares  []SpeedShare
}

// HeterogeneousSpeeds runs primes on sites of different relative speeds
// and reports who executed how much — the paper's load-balancing claim:
// "sites having less computing power are relieved while more powerful
// sites get more work" (§3.5).
func HeterogeneousSpeeds(spec Spec, speeds []float64, p, width int, cost float64) (SpeedsResult, error) {
	fab := inproc.New(spec.Link)
	defer fab.Close()
	var ds []*daemon.Daemon
	defer func() {
		for _, d := range ds {
			d.Kill()
		}
	}()
	for i, speed := range speeds {
		cfg := daemon.Config{
			PhysAddr:  fmt.Sprintf("speed-site-%d", i),
			Network:   fab,
			WorkModel: exec.WorkSimulated,
			WorkUnit:  spec.workUnit(),
			Window:    spec.Window,
			Speed:     speed,
			Seed:      int64(i + 1),
		}
		d := daemon.New(cfg)
		var err error
		if i == 0 {
			err = d.Bootstrap()
		} else {
			err = d.Join("speed-site-0")
		}
		if err != nil {
			return SpeedsResult{}, err
		}
		ds = append(ds, d)
	}

	start := time.Now()
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return SpeedsResult{}, err
	}
	raw, ok := ds[0].WaitResult(prog, 30*time.Minute)
	if !ok {
		return SpeedsResult{}, fmt.Errorf("bench: speeds run did not terminate")
	}
	if got := workloads.ParsePrimesResult(raw); len(got) != p {
		return SpeedsResult{}, fmt.Errorf("bench: speeds run wrong result")
	}
	res := SpeedsResult{Elapsed: time.Since(start)}
	for i, d := range ds {
		res.Shares = append(res.Shares, SpeedShare{
			Site:     d.Self(),
			Speed:    speeds[i],
			Executed: d.Exec.Executed(),
		})
	}
	return res, nil
}

// PinningResult is the A-7 critical-path-hint measurement.
type PinningResult struct {
	With    time.Duration
	Without time.Duration
}

// CriticalPinning measures the §3.3 scheduling hints: with pinning the
// primes round frames dispatch first and never migrate; without it they
// are ordinary frames that can be shipped around, detaching peers'
// knowledge of where work spawns.
func CriticalPinning(spec Spec, p, width int, cost float64) (PinningResult, error) {
	s := spec
	s.NoCriticalPinning = false
	with, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return PinningResult{}, err
	}
	s.NoCriticalPinning = true
	without, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return PinningResult{}, err
	}
	return PinningResult{With: with, Without: without}, nil
}

// ReplicationResult is the A-6 read-replication on/off measurement on
// the memory-bound matmul workload.
type ReplicationResult struct {
	With    time.Duration
	Without time.Duration
	Hits    uint64 // replica hits in the cached run
}

// ReadReplication measures COMA read replication (paper §4: objects
// "migrate or even be copied to other sites") on matmul, whose operand
// matrices are read by every block task.
func ReadReplication(spec Spec, n, grid int, cost float64) (ReplicationResult, error) {
	if spec.Link.Latency == 0 {
		spec.Link.Latency = time.Millisecond
	}
	run := func(disable bool) (time.Duration, uint64, error) {
		s := spec
		s.NoReadReplication = disable
		c, err := NewCluster(s)
		if err != nil {
			return 0, 0, err
		}
		defer c.Close()
		elapsed, raw, err := c.Run(workloads.MatMulApp(), workloads.MatMulArgs(n, grid, cost)...)
		if err != nil {
			return 0, 0, err
		}
		want := workloads.SeqMatMul(n, grid, 0, func(float64) {})
		if diff := mthread.ParseF64(raw) - want; diff > 1e-6 || diff < -1e-6 {
			return 0, 0, fmt.Errorf("bench: replication run checksum wrong")
		}
		var hits uint64
		for _, d := range c.Daemons {
			hits += d.Mem.Stats().CacheHits
		}
		return elapsed, hits, nil
	}
	with, hits, err := run(false)
	if err != nil {
		return ReplicationResult{}, err
	}
	without, _, err := run(true)
	if err != nil {
		return ReplicationResult{}, err
	}
	return ReplicationResult{With: with, Without: without, Hits: hits}, nil
}

// SecurityResult is the A-3 encryption on/off measurement.
type SecurityResult struct {
	Plain, Encrypted time.Duration
}

// Security measures the security manager's cost (paper §4: disable it
// "in favor of a performance gain" inside trusted clusters).
func Security(spec Spec, p, width int, cost float64) (SecurityResult, error) {
	s := spec
	s.Secret = ""
	plain, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return SecurityResult{}, err
	}
	s.Secret = "bench-secret"
	enc, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return SecurityResult{}, err
	}
	return SecurityResult{Plain: plain, Encrypted: enc}, nil
}

// IDAllocResult is one A-4 id-allocation measurement.
type IDAllocResult struct {
	Strategy string
	Sites    int
	Elapsed  time.Duration
}

// IDAlloc measures mass sign-on latency under the three id-allocation
// strategies (paper §4, cluster manager).
func IDAlloc(sites int) ([]IDAllocResult, error) {
	strategies := []cluster.Strategy{
		cluster.StrategyCentral, cluster.StrategyContingent, cluster.StrategyModulo,
	}
	var out []IDAllocResult
	for _, strat := range strategies {
		fab := inproc.New(inproc.LinkProfile{Latency: 200 * time.Microsecond})
		ds := make([]*daemon.Daemon, 0, sites)
		start := time.Now()
		ok := true
		for i := 0; i < sites; i++ {
			cfg := daemon.Config{
				PhysAddr:   fmt.Sprintf("id-site-%d", i),
				Network:    fab,
				WorkModel:  exec.WorkSimulated,
				IDStrategy: strat,
				Seed:       int64(i + 1),
			}
			d := daemon.New(cfg)
			var err error
			if i == 0 {
				err = d.Bootstrap()
			} else {
				err = d.Join("id-site-0")
			}
			if err != nil {
				ok = false
				break
			}
			ds = append(ds, d)
		}
		elapsed := time.Since(start)
		for _, d := range ds {
			d.Kill()
		}
		fab.Close()
		if !ok {
			return out, fmt.Errorf("bench: id alloc %s failed", strat)
		}
		out = append(out, IDAllocResult{Strategy: strat.String(), Sites: sites, Elapsed: elapsed})
	}
	return out, nil
}

// CentralResult is the A-5 decentralized-vs-central measurement.
type CentralResult struct {
	Decentral time.Duration
	Central   time.Duration
}

// CentralVsDecentral compares the SDVM's decentralized scheduling with
// the master/worker baseline the paper's introduction argues against.
func CentralVsDecentral(spec Spec, p, width int, cost float64) (CentralResult, error) {
	s := spec
	s.CentralSched = false
	dec, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return CentralResult{}, err
	}
	s.CentralSched = true
	cen, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return CentralResult{}, err
	}
	return CentralResult{Decentral: dec, Central: cen}, nil
}

// HeteroResult is the on-the-fly compilation experiment outcome.
type HeteroResult struct {
	Homogeneous time.Duration
	Hetero      time.Duration
	Compiles    uint64
}

// Hetero measures the cost of a cluster where every site has a distinct
// platform, forcing source distribution and on-the-fly compilation
// (paper §3.4: "fast enough not to slow the system too much").
func Hetero(spec Spec, p, width int, cost float64, compileCost time.Duration) (HeteroResult, error) {
	s := spec
	s.DistinctPlatforms = false
	homo, err := RunPrimes(s, p, width, cost)
	if err != nil {
		return HeteroResult{}, err
	}

	s.DistinctPlatforms = true
	s.CompileCost = compileCost
	c, err := NewCluster(s)
	if err != nil {
		return HeteroResult{}, err
	}
	defer c.Close()
	elapsed, raw, err := c.Run(workloads.PrimesApp(), workloads.PrimesArgs(p, width, cost)...)
	if err != nil {
		return HeteroResult{}, err
	}
	if got := workloads.ParsePrimesResult(raw); len(got) != p {
		return HeteroResult{}, fmt.Errorf("bench: hetero run returned %d primes", len(got))
	}
	var compiles uint64
	for _, d := range c.Daemons {
		compiles += d.Code.Stats().Compiles
	}
	return HeteroResult{Homogeneous: homo, Hetero: elapsed, Compiles: compiles}, nil
}
