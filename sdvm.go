// Package sdvm is a Go reproduction of the Self Distributing Virtual
// Machine (SDVM) — "The SDVM: an approach for future adaptive computer
// clusters", Haase/Eschmann/Waldschmidt, IPPS/IPDPS 2005.
//
// The SDVM turns a set of commodity machines into one parallel machine:
// every participant runs a site daemon; applications are partitioned into
// microthreads (sequential code fragments) triggered by microframes
// (dataflow argument containers); data, code, and frames migrate
// automatically through a COMA-style attraction memory; scheduling is
// fully decentralized (idle sites send help requests); sites may join and
// leave at runtime; crashes are survived through checkpoints and
// sender-side message logs.
//
// # Quick start
//
//	sdvm.Register("hello.start", func(ctx sdvm.Context) error {
//	    ctx.Output("hello from " + ctx.Site().String())
//	    ctx.Exit(nil)
//	    return nil
//	})
//
//	cluster, _ := sdvm.NewLocalCluster(4, sdvm.Options{})
//	defer cluster.Close()
//
//	app := sdvm.App{Name: "hello", Threads: []sdvm.AppThread{{Index: 0, FuncName: "hello.start"}}}
//	prog, _ := cluster.Sites[0].Submit(app)
//	result, _ := cluster.Sites[0].Wait(prog, time.Minute)
//	_ = result
//
// Real deployments run one Site per machine over TCP: the first site
// calls Bootstrap, every other site Join with any member's address.
package sdvm

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/daemon"
	"repro/internal/exec"
	"repro/internal/mthread"
	"repro/internal/security"
	"repro/internal/sitemgr"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/internal/transport/tcp"
	"repro/internal/transport/udp"
	"repro/internal/types"
	"repro/internal/wire"
)

// Re-exported identifier types: see the internal/types package for the
// full documentation.
type (
	// SiteID is a site's cluster-unique logical id.
	SiteID = types.SiteID
	// ProgramID identifies one running application.
	ProgramID = types.ProgramID
	// GlobalAddr addresses an object in the cluster-wide memory.
	GlobalAddr = types.GlobalAddr
	// FrameID identifies a microframe.
	FrameID = types.FrameID
	// PlatformID is a (simulated) hardware/OS platform tag.
	PlatformID = types.PlatformID
	// Priority orders microframes for scheduling.
	Priority = types.Priority
	// Target names a parameter slot of a destination microframe.
	Target = wire.Target
	// Context is the instruction set available to a microthread.
	Context = mthread.Context
	// Func is a microthread implementation.
	Func = mthread.Func
	// App describes a submittable application.
	App = daemon.App
	// AppThread describes one microthread of an App.
	AppThread = daemon.AppThread
	// Status is a snapshot of one site's managers.
	Status = sitemgr.Status
	// Usage is one resource account (accounting manager).
	Usage = wire.Usage
)

// Scheduling policy classes (paper §4: FIFO locally, LIFO for help
// replies).
const (
	SchedFIFO     = types.SchedFIFO
	SchedLIFO     = types.SchedLIFO
	SchedPriority = types.SchedPriority
)

// Standard priorities.
const (
	PriorityLow      = types.PriorityLow
	PriorityNormal   = types.PriorityNormal
	PriorityHigh     = types.PriorityHigh
	PriorityCritical = types.PriorityCritical
)

// Register binds a microthread implementation to a stable name in the
// process-wide registry. Call it from init (or before starting sites);
// every process of a deployment must register the same names.
func Register(name string, fn Func) { mthread.Global.Register(name, fn) }

// Options configures one SDVM site. The zero value gives a plaintext
// TCP site on an ephemeral local port with the paper's defaults
// (latency-hiding window 5, FIFO local / LIFO help scheduling).
type Options struct {
	// Addr is the listen address: "host:port" for TCP (default
	// "127.0.0.1:0"), any unique name for an in-process Network.
	Addr string
	// Network overrides the transport (e.g. an inproc fabric for
	// simulations). Nil means real TCP.
	Network transport.Network
	// UDP switches the default transport to the reliable-UDP layer
	// (ordered, retransmitting datagrams with zero-cost connections —
	// the T/TCP-inspired design the paper's network manager section
	// wishes for). Ignored when Network is set.
	UDP bool
	// Secret, when non-empty, enables AES-GCM encryption of all
	// inter-site traffic with keys derived from it (paper §4, security
	// manager). Every site of a cluster must use the same secret.
	Secret string

	// Platform tags the site's simulated platform; sites only execute
	// binaries matching their platform and compile from source
	// otherwise (paper §3.4).
	Platform PlatformID
	// Speed is the relative processing speed (default 1.0).
	Speed float64
	// Reliable marks this site as part of the reliable core
	// (paper §2.2): peers prefer it for checkpoint storage, so crashes
	// of unsafe sites recover from trustworthy machines.
	Reliable bool
	// Window is the latency-hiding window (default 5, the paper's
	// empirically good value).
	Window int
	// SimulatedWork makes Context.Work sleep instead of burning CPU,
	// so large clusters can be hosted on few cores (see DESIGN.md).
	SimulatedWork bool
	// WorkUnit is the wall-clock span of Work(1.0) at speed 1.0
	// (default 1ms).
	WorkUnit time.Duration
	// CompileCost simulates on-the-fly compilation of one microthread.
	CompileCost time.Duration

	// IDStrategy picks the logical-id allocation concept (paper §4):
	// central contact site, id contingents, or modulo emission.
	IDStrategy cluster.Strategy
	// LocalPolicy / HelpPolicy override the scheduling disciplines.
	LocalPolicy types.SchedulingClass
	HelpPolicy  types.SchedulingClass
	// CentralSched switches the cluster into the central-scheduler
	// baseline (master/worker; for comparison experiments only).
	CentralSched bool

	// CheckpointEvery enables periodic checkpointing (0 = off).
	CheckpointEvery time.Duration
	// HeartbeatEvery enables crash detection (0 = off).
	HeartbeatEvery time.Duration

	// Gossip replaces broadcast membership and load dissemination with
	// the epidemic layer (DESIGN.md §10): bounded digests to a few
	// random peers per tick, SWIM suspicion/refutation, and targeted
	// power-of-two-choices help requests. The mode is a cluster
	// property: Bootstrap sets it for the whole cluster, Join ignores
	// this flag and adopts whatever the sign-on reply reports.
	// Recommended beyond a few dozen sites.
	Gossip bool
	// GossipFanout overrides how many peers receive each digest
	// (default 3).
	GossipFanout int

	// TraceCapacity enables the per-site event tracer with a ring of
	// this many events (0 = off); see Site.Daemon.Trace and the trace
	// package — the observable form of the paper's Figures 4/5.
	TraceCapacity int

	// Metrics enables the per-site metrics registry (counters, gauges
	// and latency histograms for every manager); see Site.Daemon.Metrics
	// and `sdvmstat -metrics`.
	Metrics bool
	// MetricsAddr additionally serves the registry as JSON over HTTP at
	// this address ("host:port"). Implies Metrics.
	MetricsAddr string

	// Seed makes scheduling tie-breaks reproducible.
	Seed int64
}

func (o Options) daemonConfig() daemon.Config {
	net := o.Network
	if net == nil {
		if o.UDP {
			net = udp.New()
		} else {
			net = tcp.New()
		}
	}
	addr := o.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var sec security.Layer = security.Plaintext{}
	if o.Secret != "" {
		l, err := security.NewAESGCM(o.Secret)
		if err == nil {
			sec = l
		}
	}
	model := exec.WorkReal
	if o.SimulatedWork {
		model = exec.WorkSimulated
	}
	return daemon.Config{
		PhysAddr:     addr,
		Network:      net,
		Security:     sec,
		Platform:     o.Platform,
		Speed:        o.Speed,
		Reliable:     o.Reliable,
		Window:       o.Window,
		WorkModel:    model,
		WorkUnit:     o.WorkUnit,
		CompileCost:  o.CompileCost,
		IDStrategy:   o.IDStrategy,
		LocalPolicy:  o.LocalPolicy,
		HelpPolicy:   o.HelpPolicy,
		CentralSched: o.CentralSched,
		Gossip:       o.Gossip,
		GossipFanout: o.GossipFanout,
		Checkpoint: checkpoint.Config{
			Interval:       o.CheckpointEvery,
			HeartbeatEvery: o.HeartbeatEvery,
		},
		TraceCapacity: o.TraceCapacity,
		Metrics:       o.Metrics,
		MetricsAddr:   o.MetricsAddr,
		Seed:          o.Seed,
	}
}

// Site is one running SDVM daemon.
type Site struct {
	// Daemon exposes the underlying managers for advanced use and
	// diagnostics.
	Daemon *daemon.Daemon
}

// Bootstrap starts the first site of a new cluster.
func Bootstrap(opts Options) (*Site, error) {
	d := daemon.New(opts.daemonConfig())
	if err := d.Bootstrap(); err != nil {
		return nil, err
	}
	return &Site{Daemon: d}, nil
}

// Join starts a site and signs on to an existing cluster via the
// physical address of any current member.
func Join(contactAddr string, opts Options) (*Site, error) {
	d := daemon.New(opts.daemonConfig())
	if err := d.Join(contactAddr); err != nil {
		return nil, err
	}
	return &Site{Daemon: d}, nil
}

// ID returns the site's logical id.
func (s *Site) ID() SiteID { return s.Daemon.Self() }

// Submit installs and starts an application on the cluster; this site
// becomes its code home and frontend.
func (s *Site) Submit(app App, args ...[]byte) (ProgramID, error) {
	return s.Daemon.Submit(app, args...)
}

// Wait blocks until the program terminates anywhere in the cluster and
// returns its result. ok is false on timeout (timeout<=0 waits forever).
func (s *Site) Wait(prog ProgramID, timeout time.Duration) (result []byte, ok bool) {
	return s.Daemon.WaitResult(prog, timeout)
}

// Output returns a channel of the program's frontend output; it closes
// when the program terminates. Meaningful on the submitting site.
func (s *Site) Output(prog ProgramID) <-chan string {
	return s.Daemon.SubscribeOutput(prog)
}

// Status snapshots the local managers.
func (s *Site) Status() Status { return s.Daemon.Status() }

// SetInputProvider installs this site's frontend input source: it
// answers microthreads' Input calls for programs submitted here
// (paper §4: "the I/O manager sends all output and input requests to
// the front end").
func (s *Site) SetInputProvider(f func(prog ProgramID, prompt string) (string, bool)) {
	s.Daemon.IO.SetInputProvider(f)
}

// Usage returns the cluster-wide resource account of a program (the
// paper's §2.2/§6 accounting proposal): the aggregated total and the
// per-site breakdown.
func (s *Site) Usage(prog ProgramID) (total Usage, perSite []Usage) {
	return s.Daemon.Acct.ClusterUsage(prog)
}

// SignOff leaves the cluster in a controlled manner, relocating every
// local microframe and memory object first (paper §3.4).
func (s *Site) SignOff() error { return s.Daemon.SignOff() }

// Kill stops the site abruptly, as a crash would (recovery experiments).
func (s *Site) Kill() { s.Daemon.Kill() }

// LocalCluster hosts n sites inside this process on a virtual network —
// the configuration used by the examples and the benchmark harness.
type LocalCluster struct {
	Fabric *inproc.Fabric
	Sites  []*Site
}

// NewLocalCluster builds an n-site in-process cluster. The sites share
// opts except for the listen address; SimulatedWork defaults to on
// (virtual-parallel Work even on few cores).
func NewLocalCluster(n int, opts Options) (*LocalCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sdvm: cluster size must be positive")
	}
	fab := inproc.New(inproc.LinkProfile{})
	lc := &LocalCluster{Fabric: fab}
	for i := 0; i < n; i++ {
		o := opts
		o.Network = fab
		o.Addr = fmt.Sprintf("site-%d", i)
		o.SimulatedWork = true
		if o.Seed == 0 {
			o.Seed = int64(i + 1)
		}
		var (
			s   *Site
			err error
		)
		if i == 0 {
			s, err = Bootstrap(o)
		} else {
			s, err = Join("site-0", o)
		}
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("sdvm: site %d: %w", i, err)
		}
		lc.Sites = append(lc.Sites, s)
	}
	return lc, nil
}

// Close kills every site and tears the virtual network down.
func (lc *LocalCluster) Close() {
	for _, s := range lc.Sites {
		s.Kill()
	}
	lc.Fabric.Close()
}

// Parameter encoding helpers (re-exported from the microthread API).

// U64 encodes an unsigned integer parameter.
func U64(v uint64) []byte { return mthread.U64(v) }

// ParseU64 decodes an unsigned integer parameter.
func ParseU64(b []byte) uint64 { return mthread.ParseU64(b) }

// I64 encodes a signed integer parameter.
func I64(v int64) []byte { return mthread.I64(v) }

// ParseI64 decodes a signed integer parameter.
func ParseI64(b []byte) int64 { return mthread.ParseI64(b) }

// F64 encodes a float parameter.
func F64(v float64) []byte { return mthread.F64(v) }

// ParseF64 decodes a float parameter.
func ParseF64(b []byte) float64 { return mthread.ParseF64(b) }

// U64s encodes a vector of unsigned integers.
func U64s(vs []uint64) []byte { return mthread.U64s(vs) }

// ParseU64s decodes a vector of unsigned integers.
func ParseU64s(b []byte) []uint64 { return mthread.ParseU64s(b) }

// TargetBytes encodes a Target so it can travel as a parameter.
func TargetBytes(t Target) []byte { return mthread.TargetBytes(t) }

// ParseTarget decodes a Target parameter.
func ParseTarget(b []byte) Target { return mthread.ParseTarget(b) }
